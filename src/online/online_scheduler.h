// OnlineScheduler: the generic online complex-monitoring algorithm
// (paper Appendix A, Algorithm 1 + procedure probeEIs).
//
// At each chronon T_j the scheduler
//   1. receives the CEIs arriving at T_j (AddArrivals) and the client
//      cancellations taking effect at T_j (RemoveCeiBatch — mid-epoch
//      profile churn; cancelled CEIs stop consuming budget immediately),
//   2. activates their EIs as the EIs' start chronons are reached,
//   3. asks the policy to rank the active candidate EIs and greedily probes
//      up to C_j distinct resources (non-preemptive mode first serves EIs of
//      CEIs that already had an EI captured),
//   4. captures every active EI whose resource was probed this chronon
//      (exploiting intra-resource overlap, the R_ids set of Algorithm 1),
//   5. kills CEIs for which an EI expired uncaptured at T_j — they can never
//      be completed, so their remaining EIs stop consuming budget.
//
// Implementation (docs/PERFORMANCE.md "Memory & sustained throughput"):
// activations, expiries, and pushes flow through per-chronon buckets kept as
// flat chunked rings (EventRing) carved from one Arena — after warm-up the
// chunk population recycles and a steady-state chronon performs zero heap
// allocations (enforced by the counter-based regression test). The active
// candidates live in structure-of-arrays parallel vectors in activation
// order (the handle, plus cached resource/finish columns the ranking scan
// reads sequentially; the policy-value memo columns exist only for
// ValueStableBetweenCaptures policies), compacted stably in place by every
// ranking pass. Ranking computes one best candidate per resource (resource
// dedup) and a bounded top-C selection: small uniform budgets keep a
// C-bounded per-shard list and never touch the per-resource tables (which
// are then never even allocated); larger or varying-cost budgets use the
// epoch-stamped tables. With SchedulerOptions::num_threads > 1 the flat
// scan is chunk-sharded across a fixed worker pool and the per-shard
// partial bests are merged deterministically. The schedule is
// byte-identical for every thread count — the documented value/deadline/
// EI-id tie-break defines a position-independent total order, and probe
// issuance stays serial.

// When a FaultInjector is attached (SchedulerOptions::fault_injector) probes
// can fail: a failed probe still spends budget but captures nothing. The
// scheduler then reacts per FaultHandlingOptions — capped exponential
// backoff with deterministic jitter between retries, a per-resource circuit
// breaker (closed -> open -> half-open) that stops wasting budget on a dead
// resource, and a deadline shrink that makes urgency ranking account for the
// expected retries on flaky resources. With no injector (or an injector
// whose failure probabilities are all zero) the schedule is byte-identical
// to the fault-free algorithm (pay-for-use, enforced by the fault property
// tests).
//
// When the injector's spec additionally names fleet incident domains
// (docs/ROBUSTNESS.md), an online IncidentDetector watches the attempt
// stream per domain — no oracle access — and opens a fleet-level breaker on
// a sustained windowed failure spike: covered resources are withheld from
// ranking (their budget flows to unaffected work) except for one
// deterministic re-probe trial per reprobe interval, which is also how the
// detector notices the incident ended. Detector state is a pure function of
// the attempt stream and is only read/written in the serial phases, so the
// any-thread-count determinism contract is unchanged. Specs without
// incident lines construct no detector and schedule byte-identically to
// before.

#ifndef WEBMON_ONLINE_ONLINE_SCHEDULER_H_
#define WEBMON_ONLINE_ONLINE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "model/cei.h"
#include "model/probe_outcome.h"
#include "model/schedule.h"
#include "model/types.h"
#include "policy/policy.h"
#include "util/arena.h"
#include "util/event_ring.h"
#include "util/id_map.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace webmon {

class FaultInjector;
class IncidentDetector;

/// Capacity hints for long-running deployments. All default to 0 ("let the
/// containers grow on demand"); a server that knows its steady-state load
/// can pre-reserve and skip the cold-start reallocation burst that
/// otherwise shows up in the per-phase timers over the first few chronons.
struct SchedulerSizingHints {
  /// Expected peak number of simultaneously active candidate EIs: sizes the
  /// flat slot columns, the expiry scratch, and (for observing policies)
  /// the active mirror.
  size_t expected_active_eis = 0;
  /// Expected total probe attempts over the run: pre-reserves the attempt
  /// log (only allocated when a fault injector is attached).
  size_t expected_attempts = 0;
  /// Expected total CEIs registered over the run: pre-sizes the id -> state
  /// lookup serving RemoveCei, so steady-state churn never grows it.
  size_t expected_ceis = 0;
};

/// Execution options for the online algorithm.
struct SchedulerOptions {
  /// Preemptive mode considers all candidate EIs in one pool; non-preemptive
  /// mode first exhausts EIs of previously probed (started) CEIs
  /// (paper Section IV-A).
  bool preemptive = true;
  /// Varying probe costs (the extension Section III-C defers): when
  /// non-empty (must have one entry per resource, each > 0), the
  /// per-chronon budget C_j is a cost capacity and probing resource r
  /// consumes resource_costs[r] of it, instead of every probe costing 1.
  std::vector<double> resource_costs;
  /// Failure model for issued probes (non-owning; must outlive the
  /// scheduler). Null means the ideal network: every probe succeeds and no
  /// fault bookkeeping is allocated.
  FaultInjector* fault_injector = nullptr;
  /// Reaction to probe failures; only consulted when fault_injector is set.
  FaultHandlingOptions fault_handling;
  /// Worker threads for the ranking phase. 1 (the default) keeps the fully
  /// serial path; values > 1 shard the per-resource candidate scan across a
  /// fixed pool. The emitted schedule is byte-identical for every value
  /// (determinism contract, docs/PERFORMANCE.md); values < 1 mean 1.
  int num_threads = 1;
  /// Steady-state capacity hints (see SchedulerSizingHints).
  SchedulerSizingHints sizing;
  /// Reclaim per-CEI state once a CEI reaches a terminal state (captured,
  /// expired, cancelled): its states_ slot is recycled for a later arrival
  /// and its id -> state entry is dropped, so resident footprint tracks the
  /// LIVE population instead of total arrivals (docs/PERFORMANCE.md
  /// "Churn"). The schedule, callbacks, and every counter are byte-
  /// identical with the flag on or off (the churn-compaction suite); the
  /// observable differences are diagnostic only: LifecycleOf on a retired
  /// CEI answers kUnknown instead of the terminal state, and a RemoveCei
  /// naming an id the scheduler has forgotten counts as a cancels_noop
  /// instead of failing NotFound (through the Proxy this is unreachable —
  /// the mailbox rejects ids it never assigned). Off by default.
  /// Requires gap-free stepping to reclaim: after a chronon gap the
  /// scheduler stops retiring (correct, just no longer shrinking).
  bool compact_terminal_states = false;
};

/// Counters accumulated over a run.
struct SchedulerStats {
  int64_t ceis_seen = 0;
  int64_t ceis_captured = 0;
  int64_t ceis_expired = 0;
  /// CEIs removed live by RemoveCei / RemoveCeiBatch (client cancels that
  /// reached a still-pending CEI).
  int64_t ceis_cancelled = 0;
  /// Cancels that arrived after their CEI already reached a terminal state
  /// (captured or expired) — accepted as deterministic no-ops.
  int64_t cancels_noop = 0;
  int64_t eis_seen = 0;
  int64_t eis_captured = 0;
  /// Probe attempts issued (each spends budget whether or not it succeeds).
  int64_t probes_issued = 0;
  /// Server pushes delivered (captures they caused count in eis_captured).
  int64_t pushes_delivered = 0;
  /// Non-empty ingestion batches folded in via AddArrivalBatch, and the
  /// total CEIs they carried (the Proxy's mailbox-drain path; zero when the
  /// scheduler is fed arrival by arrival).
  int64_t drain_batches = 0;
  int64_t drained_arrivals = 0;
  /// Attempts that failed (transient error, outage, rate limit, timeout).
  int64_t probes_failed = 0;
  /// Attempts issued to a resource with a live failure streak (retries).
  int64_t probes_retried = 0;
  /// Budget units spent on those retry attempts (counted against
  /// FaultSpec::retry_budget when a cap is set).
  double retry_budget_spent = 0.0;
  /// Chronon x resource pairs withheld from ranking (or from issuance,
  /// when the budget ran out mid-chronon) because the retry budget was
  /// exhausted while the resource was otherwise available for a retry.
  int64_t retries_suppressed = 0;
  /// Transitions of any resource's circuit breaker to the open state.
  int64_t breaker_trips = 0;
  /// Budget units spent on attempts that captured nothing.
  double budget_lost_to_failures = 0.0;
  // --- Fleet incident counters (all zero without incident domains). The
  // window tallies compare the injector's ground truth against the
  // detector's belief — measurement only, never a scheduling input.
  /// Fleet-breaker open transitions (detector closed -> open).
  int64_t incident_openings = 0;
  /// Ground-truth incident windows during which the detector opened at
  /// least once, and completed windows it never caught. Windows still in
  /// progress when the run ends are counted in neither.
  int64_t incident_windows_detected = 0;
  int64_t incident_windows_missed = 0;
  /// Chronon x domain pairs of ground-truth incident exposure.
  int64_t incident_chronons = 0;
  /// Chronon x resource pairs withheld from ranking by an open fleet
  /// breaker while otherwise available — the budget redirected (saved).
  int64_t incident_probes_suppressed = 0;
  /// End-of-incident re-probe trials issued while a covering breaker was
  /// open.
  int64_t incident_trial_probes = 0;
  /// Cumulative wall seconds spent per Step phase (reported under the
  /// --timing flag): index maintenance (activation, expiry catch-up,
  /// pushes), candidate ranking (BeginChronon + values + top-C selection —
  /// the phase num_threads parallelizes), probe issuance (greedy walk +
  /// fault handling), and capture/expiry sweeps.
  double activate_seconds = 0.0;
  double rank_seconds = 0.0;
  double probe_seconds = 0.0;
  double capture_seconds = 0.0;
};

/// Observable per-resource failure-handling state (diagnostics, tests).
struct ResourceHealth {
  enum class Breaker : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
  Breaker breaker = Breaker::kClosed;
  /// First chronon at which an attempt may be issued again after a failure
  /// (backoff gate; 0 = no gate).
  Chronon retry_not_before = 0;
  /// While the breaker is open: first chronon of the half-open trial.
  Chronon open_until = 0;
  /// Current open-period length; doubles on failed half-open trials.
  Chronon cooldown = 0;
  int32_t consecutive_failures = 0;
  int64_t failures = 0;
  int64_t successes = 0;
  /// EWMA failure-rate estimate driving the deadline shrink.
  double ewma_failure = 0.0;
};

/// The online proxy scheduling engine. Drive it from a single chronon loop:
/// the public API is not thread-safe. Internally the ranking phase fans out
/// across SchedulerOptions::num_threads workers and joins before any state
/// is mutated, so callers never observe concurrency.
class OnlineScheduler {
 public:
  /// `policy` must outlive the scheduler. `num_chronons` bounds the epoch.
  OnlineScheduler(uint32_t num_resources, Chronon num_chronons,
                  BudgetVector budget, Policy* policy,
                  SchedulerOptions options = {});

  OnlineScheduler(const OnlineScheduler&) = delete;
  OnlineScheduler& operator=(const OnlineScheduler&) = delete;
  ~OnlineScheduler();

  /// Registers CEIs arriving at chronon `now`. Must be called before
  /// Step(now); `cei` pointers must stay valid for the scheduler's lifetime.
  /// Rejects CEIs that are empty or whose capture window already passed.
  Status AddArrival(const Cei* cei, Chronon now);

  /// Registers a whole drained ingestion batch arriving at chronon `now`,
  /// in batch order (the Proxy mailbox's sequence order). Equivalent to
  /// calling AddArrival for each element, plus the drain counters in
  /// SchedulerStats. Stops at the first invalid CEI.
  Status AddArrivalBatch(const std::vector<const Cei*>& batch, Chronon now);

  /// Cancels a previously registered CEI before the Step for chronon `now`
  /// runs (mid-epoch profile churn). A still-pending CEI is removed: it is
  /// never probed again, its event-ring entries are purged or tombstoned
  /// (amortized-O(1) compaction), its slot-column entries fall to the next
  /// ranking pass's lazy pruning, and on_cei_cancelled fires. A CEI that
  /// already completed or expired yields a deterministic no-op (the
  /// `cancels_noop` counter) — never an error, because the caller (the
  /// Proxy mailbox) cannot observe scheduler state when it accepts the
  /// cancel. Per-resource fault health (backoff, breaker, EWMA) is
  /// deliberately retained: it describes the resource, not the need.
  /// Fails on an id the scheduler never saw.
  Status RemoveCei(CeiId id, Chronon now);

  /// Removes a whole drained cancel batch, in batch order (the Proxy
  /// mailbox's sequence order). Equivalent to calling RemoveCei for each
  /// element; stops at the first unknown id.
  Status RemoveCeiBatch(const std::vector<CeiId>& batch, Chronon now);

  /// Registers a server push of `resource` delivered at chronon `t`
  /// (paper Section III: "occasionally a server may push an update").
  /// Pushed content captures every EI on the resource active at `t` for
  /// free — no probe budget is consumed and nothing is written to the
  /// Schedule. `t` must not precede the next Step.
  Status AddPush(ResourceId resource, Chronon t);

  /// Executes chronon `now` (steps must use strictly increasing chronons):
  /// selects and issues probes, updates capture state, expires CEIs. If
  /// `schedule` is non-null, issued probes are recorded in it.
  /// Returns the resources probed this chronon via `probed` if non-null.
  Status Step(Chronon now, Schedule* schedule,
              std::vector<ResourceId>* probed = nullptr);

  /// Called with every CEI id that completes (all EIs captured).
  void set_on_cei_captured(std::function<void(const Cei&)> cb) {
    on_cei_captured_ = std::move(cb);
  }
  /// Called with every CEI id that dies (an EI expired uncaptured).
  void set_on_cei_expired(std::function<void(const Cei&)> cb) {
    on_cei_expired_ = std::move(cb);
  }
  /// Called with every still-pending CEI removed by RemoveCei (no-op
  /// cancels of already-terminal CEIs do not fire it).
  void set_on_cei_cancelled(std::function<void(const Cei&)> cb) {
    on_cei_cancelled_ = std::move(cb);
  }

  /// Terminal-state audit of CEI `id`: kUnknown for ids never registered,
  /// kPending while live, else the terminal state (diagnostics, tests).
  /// Under SchedulerOptions::compact_terminal_states a retired CEI's entry
  /// is gone, so terminal ids answer kUnknown once reclaimed.
  CeiLifecycle LifecycleOf(CeiId id) const;

  const SchedulerStats& stats() const { return stats_; }

  /// Every probe attempt with its outcome, in issue order. Only populated
  /// when a fault injector is attached (empty otherwise); feed it to
  /// AuditFaultRun to verify the failure-handling invariants.
  const std::vector<ProbeAttempt>& attempt_log() const {
    return attempt_log_;
  }

  /// Failure-handling state of `resource`. Only meaningful when a fault
  /// injector is attached; returns a default (healthy) state otherwise.
  ResourceHealth health(ResourceId resource) const;

  /// The fleet incident detector; null unless the attached injector's spec
  /// names incident domains and FaultHandlingOptions::incident_detection is
  /// on. Diagnostics and tests.
  const IncidentDetector* incident_detector() const {
    return detector_.get();
  }

  /// Number of currently live candidate CEIs (diagnostics).
  size_t NumCandidateCeis() const;
  /// Number of CEI state slots currently resident (allocated and not on
  /// the free list). Without compact_terminal_states this is every CEI
  /// ever registered; with it, live CEIs plus terminal ones awaiting their
  /// release chronon — the bounded-footprint quantity the churn soak
  /// asserts on (docs/PERFORMANCE.md "Churn").
  size_t NumResidentStates() const { return states_.size() - free_states_.size(); }
  /// Number of currently live active candidate EIs (diagnostics; counts the
  /// index's live entries, excluding captured/failed stragglers awaiting
  /// lazy pruning).
  size_t NumActiveEis() const;

 private:
  // A candidate tagged with its activation sequence (expiry buckets, which
  // drain out of activation order on chronon gaps and must restore it).
  struct SeqCand {
    uint64_t seq = 0;
    CandidateEi cand;
  };
  // A resource's best candidate surviving per-resource dedup, with its
  // policy value, cached deadline/resource (so comparisons and dedup skip
  // the EI deref), and (non-preemptive mode) started flag.
  struct Ranked {
    CandidateEi cand;
    double value = 0.0;
    Chronon finish = 0;
    ResourceId resource = 0;
    bool started = false;
  };
  static constexpr size_t kNoCachedValue = ~size_t{0};
  // Largest uniform budget served by the table-free bounded top-C path; a
  // C-entry scan board stops beating the epoch-stamped tables somewhere
  // beyond this.
  static constexpr int64_t kMaxBoundedTopC = 64;

  // The documented candidate total order: (non-preemptive: started CEIs
  // first), then ascending value, earlier deadline, CEI id, EI index.
  // Position-independent, which is what legalizes per-resource dedup and
  // bounded top-C selection: any subset ranks exactly as it did inside the
  // legacy full sort.
  static bool RankedBefore(const Ranked& a, const Ranked& b,
                           bool split_started);

  // True iff the candidate may still be probed some chronon (its CEI is
  // live and unsatisfied, the EI uncaptured and unfailed). Expiry
  // processing marks out-of-window EIs failed, so liveness needs no window
  // check here.
  static bool LiveCandidate(const CandidateEi& cand) {
    const CeiState& s = *cand.state;
    return !s.dead && !s.Complete() && !s.captured[cand.ei_index] &&
           !s.failed[cand.ei_index];
  }

  // Indexes `cand` as active: assigns its activation seq, appends it to the
  // flat slot columns and its finish chronon's expiry bucket (and the
  // active mirror when the policy observes the active set).
  void AdmitActive(const CandidateEi& cand);
  // Activates EIs whose start chronon is `now`.
  void Activate(Chronon now);
  // Records that `cand`'s window expired uncaptured; kills the CEI when its
  // semantics can no longer be satisfied.
  void MarkFailed(const CandidateEi& cand);
  // Marks every still-live candidate whose window closed in [from, to]
  // failed, in activation order (draining the expiry buckets). Called with
  // [cursor+1, now-1] at step start (chronon-gap coverage) and [now, now]
  // after the capture sweep (the legacy end-of-step expiry).
  void ProcessExpiries(Chronon from, Chronon to);
  // Removes entries the legacy Compact would drop from the active mirror
  // (only maintained for ObservesActiveSet policies).
  void CompactMirror(Chronon now);
  // compact_terminal_states: schedules states_[index] (just turned
  // terminal) for reclamation at its release chronon — the last chronon at
  // which any event-ring bucket may still hold a reference to the state
  // (max over its EIs with start < K of: finish when finish < K, else
  // start), floored by retire_floor_ (set by the terminal site to the
  // first chronon whose rank pass has provably pruned the state's slot-
  // column entries). The retire ring drains at the END of Step(release),
  // after every structure that could reach the state has let go, so slot
  // reuse by a later arrival can never resurrect a stale reference. No-op
  // unless the option is on and stepping has been gap-free.
  void RetireTerminalState(uint32_t index);
  // Looks up the states_ index of `state` and retires it if the id -> index
  // mapping still points at it (it may not when a direct driver re-
  // registered the same id).
  void RetireTerminalStateOf(const CeiState& state);
  // Copies slot `from` over slot `to` in every live column (compaction).
  void MoveSlot(size_t to, size_t from);
  // Allocates the epoch-stamped per-resource rank tables on first use —
  // the bounded top-C path never needs them, so small-budget uniform-cost
  // runs skip tens of MB per shard at fleet scale.
  void EnsureRankTables();
  // One chunk of the fused compact-and-rank pass: scans the shard's
  // contiguous range of the slot columns, compacts live entries in place
  // (stable, writing only across gaps), and — when `compute_values` —
  // computes policy values (reusing the memo columns where legal) and
  // tracks candidates for selection. Three selection modes, all provably
  // schedule-identical (see RankedBefore):
  //   single_best — C = 1 with uniform costs (the paper's canonical
  //     setting): one running minimum per shard.
  //   bounded (top_c > 0) — uniform costs, 1 < C <= kMaxBoundedTopC: a
  //     C-entry per-shard board with linear-scan resource dedup; a
  //     candidate that cannot beat the board's worst entry is skipped
  //     outright, so the per-resource tables are never touched (a resource
  //     evicted or skipped that way is provably outside the global top-C).
  //   tables (top_c == 0) — varying costs or large C: each resource's best
  //     in the shard's epoch-stamped partial-best table.
  // `check_attempted` is false when no resource was contacted before the
  // rank phase (no pushes or fleet trials) — the common case, which skips
  // the per-candidate attempted_now_ lookup. Runs concurrently with other
  // shards: writes only the shard's own slot range, board, and tables;
  // everything else it touches is read-only during the phase.
  void RankShard(int shard, Chronon now, bool compute_values,
                 bool single_best, size_t top_c, bool check_attempted);

  // --- Failure handling (active only when a fault injector is attached) ---
  // True iff `resource` may be probed at `now`: its breaker is not open
  // (or its cooldown elapsed, allowing the half-open trial) and no backoff
  // gate is pending.
  bool ResourceAvailable(ResourceId resource, Chronon now) const;
  // Folds one attempt outcome into the resource's health: streaks, EWMA,
  // backoff gate, breaker transitions, and the fault counters.
  void RecordOutcome(ResourceId resource, Chronon now, bool success,
                     double cost);
  // Deadline shrink for EIs on `resource` (0 on healthy resources).
  Chronon ShrinkFor(ResourceId resource) const;
  // True iff FaultSpec::retry_budget is set and already spent, so no
  // further retry attempts may be issued.
  bool RetryBudgetExhausted() const;
  // Advances the incident detector to `now` and folds the injector's
  // ground-truth incident state into the detected/missed window counters
  // (measurement only — scheduling reads the detector alone). Called once
  // per Step when the spec names incident domains.
  void UpdateIncidentState(Chronon now);

  uint32_t num_resources_;
  Chronon num_chronons_;
  BudgetVector budget_;
  Policy* policy_;
  SchedulerOptions options_;

  // Owned CEI scheduling states. A deque so pointers stay stable (we never
  // erase) while states of CEIs that arrived together stay contiguous —
  // the ranking scan visits slots in activation order, so neighboring
  // liveness checks hit the same cache lines.
  std::deque<CeiState> states_;
  // CeiId -> index into states_, maintained by AddArrival and looked up by
  // RemoveCei / LifecycleOf. Flat open addressing with backward-shift
  // deletion (util/id_map.h): inserts allocate only at high-water growth,
  // so steady-state churn keeps the zero-allocation tick contract. Entries
  // are never erased — terminal states stay queryable for the lifecycle
  // audit, matching states_' own append-only growth. If the same id is
  // registered twice (only possible when driving the scheduler directly,
  // never through the Proxy), the latest registration wins.
  FlatIdMap<uint32_t> cei_index_;

  // The active candidate list in activation order, split into parallel
  // structure-of-arrays columns so the ranking scan streams exactly the
  // bytes it needs: the handle (liveness), and the resource/finish columns
  // that replace the state->cei->eis pointer chase for dedup, gating, and
  // deadline tie-breaks. All columns compact together, stably, in every
  // ranking pass (so between Steps they hold at most one tick's worth of
  // stale entries).
  std::vector<CandidateEi> slot_cand_;
  std::vector<ResourceId> slot_resource_;
  std::vector<Chronon> slot_finish_;
  // Policy-value memo columns, maintained only when the policy declares
  // ValueStableBetweenCaptures() (pay-for-use): slot_value_[i] is valid
  // while the parent CEI's num_captured equals slot_version_[i].
  std::vector<double> slot_value_;
  std::vector<size_t> slot_version_;

  // Backing store for every per-chronon event bucket below. Grows to the
  // high-water chunk population and is never reset — EventRing recycles
  // drained chunks through its free list, so steady state allocates
  // nothing.
  Arena arena_;
  // expiring_ring_[t] = activated EIs whose window closes at t; drained
  // exactly once when the expiry cursor passes t.
  EventRing<SeqCand> expiring_ring_;
  // pending_ring_[t] = EIs becoming active at chronon t.
  EventRing<CandidateEi> pending_ring_;
  // push_ring_[t] = resources whose servers push at chronon t.
  EventRing<ResourceId> push_ring_;
  // retire_ring_[t] = states_ indices of terminal CEIs whose last possible
  // reference expires at t; drained at the end of Step(t) into free_states_
  // (compact_terminal_states only — otherwise never pushed to).
  EventRing<uint32_t> retire_ring_;
  // Recycled states_ slots awaiting reuse by AddArrival.
  std::vector<uint32_t> free_states_;
  // Floor for the next RetireTerminalState's release chronon (see above).
  Chronon retire_floor_ = 0;
  // All expiries at chronons <= expiry_cursor_ have been processed.
  Chronon expiry_cursor_ = -1;
  // Next activation sequence number (see SeqCand::seq).
  uint64_t next_seq_ = 0;

  // Exact replica of the legacy flat active_ vector (content and order),
  // maintained only when the policy observes the active set in
  // BeginChronon (WIC's utility aggregation, Random's ordered draws);
  // other policies receive empty_active_ and pay nothing.
  bool track_active_mirror_ = false;
  std::vector<CandidateEi> active_mirror_;
  const std::vector<CandidateEi> empty_active_;

  // True when the policy declares ValueStableBetweenCaptures().
  bool value_stable_ = false;

  // Scratch: marks resources whose content is available this step (R_ids:
  // successful probes and pushes) — these capture their active EIs.
  std::vector<uint8_t> probed_now_;
  // Scratch: marks resources contacted this step (attempts and pushes),
  // successful or not; dedups the greedy walk. Equal to probed_now_ when no
  // injector is attached.
  std::vector<uint8_t> attempted_now_;
  // Per-step scratch for the resources pushed / probed this chronon,
  // reused across chronons (steady state must not allocate).
  std::vector<ResourceId> pushed_now_scratch_;
  std::vector<ResourceId> r_ids_scratch_;

  // Ranking scratch, reused across chronons to avoid per-step allocation.
  // Bounded top-C mode: each shard's C-entry selection board.
  std::vector<std::vector<Ranked>> shard_topc_;
  // Table mode (lazily allocated by EnsureRankTables): each shard keeps its
  // partial per-resource bests in shard_best_ (rows of num_resources_
  // entries), valid when the matching shard_best_epoch_ entry equals
  // rank_epoch_ — stamping makes per-tick resets O(touched), not
  // O(resources).
  std::vector<Ranked> shard_best_;
  std::vector<uint64_t> shard_best_epoch_;
  // Resources each shard touched this tick, in first-touch order.
  std::vector<std::vector<ResourceId>> shard_touched_;
  // Single-best mode (C = 1, uniform costs): each shard's running minimum,
  // valid when the matching shard_one_set_ flag is non-zero.
  std::vector<Ranked> shard_one_;
  std::vector<uint8_t> shard_one_set_;
  // Post-compaction end of each shard's chunk (gaps are stitched serially
  // after the pool joins).
  std::vector<size_t> shard_live_end_;
  size_t chunk_size_ = 0;  // slots per shard this tick
  // Serial merge of the shards' partial bests (same stamping scheme;
  // best_of_r_/best_epoch_ are lazily allocated with the shard tables).
  std::vector<Ranked> best_of_r_;
  std::vector<uint64_t> best_epoch_;
  std::vector<ResourceId> touched_;
  uint64_t rank_epoch_ = 0;
  // The merged, globally sorted selection handed to the greedy walk.
  std::vector<Ranked> merged_;
  std::vector<SeqCand> expiry_scratch_;
  // Per-resource fault gates hoisted once per chronon (sized only when an
  // injector is attached): avail_now_[r] / shrink_now_[r] cache
  // ResourceAvailable / ShrinkFor so the ranking scan never recomputes them
  // per candidate.
  std::vector<uint8_t> avail_now_;
  std::vector<Chronon> shrink_now_;
  // Worker pool for the ranking phase; null when num_threads <= 1.
  std::unique_ptr<ThreadPool> pool_;
  int num_shards_ = 1;

  // Per-resource failure-handling state; empty when no injector is set.
  std::vector<ResourceHealth> health_;
  std::vector<ProbeAttempt> attempt_log_;
  // Fleet incident machinery; allocated only when the injector's spec
  // names incident domains (pay-for-use). detector_ additionally requires
  // incident_detection — the oblivious ablation keeps it null but still
  // tallies the ground-truth exposure counters.
  bool track_incidents_ = false;
  std::unique_ptr<IncidentDetector> detector_;
  // Ground-truth window tracking per domain: inside a bad window, and
  // whether the detector caught it.
  std::vector<uint8_t> gt_in_window_;
  std::vector<uint8_t> gt_window_detected_;

  Chronon last_step_ = -1;
  // True while every chronon 0..last_step_ has been stepped (no gaps), in
  // which case every pending bucket <= last_step_ has provably drained —
  // the certainty RemoveCei's event-ring tombstoning relies on.
  bool contiguous_steps_ = true;
  SchedulerStats stats_;
  std::function<void(const Cei&)> on_cei_captured_;
  std::function<void(const Cei&)> on_cei_expired_;
  std::function<void(const Cei&)> on_cei_cancelled_;
};

}  // namespace webmon

#endif  // WEBMON_ONLINE_ONLINE_SCHEDULER_H_
