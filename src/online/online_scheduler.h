// OnlineScheduler: the generic online complex-monitoring algorithm
// (paper Appendix A, Algorithm 1 + procedure probeEIs).
//
// At each chronon T_j the scheduler
//   1. receives the CEIs arriving at T_j (AddArrivals),
//   2. activates their EIs as the EIs' start chronons are reached,
//   3. asks the policy to rank the active candidate EIs and greedily probes
//      up to C_j distinct resources (non-preemptive mode first serves EIs of
//      CEIs that already had an EI captured),
//   4. captures every active EI whose resource was probed this chronon
//      (exploiting intra-resource overlap, the R_ids set of Algorithm 1),
//   5. kills CEIs for which an EI expired uncaptured at T_j — they can never
//      be completed, so their remaining EIs stop consuming budget.

// When a FaultInjector is attached (SchedulerOptions::fault_injector) probes
// can fail: a failed probe still spends budget but captures nothing. The
// scheduler then reacts per FaultHandlingOptions — capped exponential
// backoff with deterministic jitter between retries, a per-resource circuit
// breaker (closed -> open -> half-open) that stops wasting budget on a dead
// resource, and a deadline shrink that makes urgency ranking account for the
// expected retries on flaky resources. With no injector (or an injector
// whose failure probabilities are all zero) the schedule is byte-identical
// to the fault-free algorithm (pay-for-use, enforced by the fault property
// tests).

#ifndef WEBMON_ONLINE_ONLINE_SCHEDULER_H_
#define WEBMON_ONLINE_ONLINE_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "model/cei.h"
#include "model/probe_outcome.h"
#include "model/schedule.h"
#include "model/types.h"
#include "policy/policy.h"
#include "util/status.h"

namespace webmon {

class FaultInjector;

/// Execution options for the online algorithm.
struct SchedulerOptions {
  /// Preemptive mode considers all candidate EIs in one pool; non-preemptive
  /// mode first exhausts EIs of previously probed (started) CEIs
  /// (paper Section IV-A).
  bool preemptive = true;
  /// Varying probe costs (the extension Section III-C defers): when
  /// non-empty (must have one entry per resource, each > 0), the
  /// per-chronon budget C_j is a cost capacity and probing resource r
  /// consumes resource_costs[r] of it, instead of every probe costing 1.
  std::vector<double> resource_costs;
  /// Failure model for issued probes (non-owning; must outlive the
  /// scheduler). Null means the ideal network: every probe succeeds and no
  /// fault bookkeeping is allocated.
  FaultInjector* fault_injector = nullptr;
  /// Reaction to probe failures; only consulted when fault_injector is set.
  FaultHandlingOptions fault_handling;
};

/// Counters accumulated over a run.
struct SchedulerStats {
  int64_t ceis_seen = 0;
  int64_t ceis_captured = 0;
  int64_t ceis_expired = 0;
  int64_t eis_seen = 0;
  int64_t eis_captured = 0;
  /// Probe attempts issued (each spends budget whether or not it succeeds).
  int64_t probes_issued = 0;
  /// Server pushes delivered (captures they caused count in eis_captured).
  int64_t pushes_delivered = 0;
  /// Attempts that failed (transient error, outage, rate limit, timeout).
  int64_t probes_failed = 0;
  /// Attempts issued to a resource with a live failure streak (retries).
  int64_t probes_retried = 0;
  /// Transitions of any resource's circuit breaker to the open state.
  int64_t breaker_trips = 0;
  /// Budget units spent on attempts that captured nothing.
  double budget_lost_to_failures = 0.0;
};

/// Observable per-resource failure-handling state (diagnostics, tests).
struct ResourceHealth {
  enum class Breaker : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
  Breaker breaker = Breaker::kClosed;
  /// First chronon at which an attempt may be issued again after a failure
  /// (backoff gate; 0 = no gate).
  Chronon retry_not_before = 0;
  /// While the breaker is open: first chronon of the half-open trial.
  Chronon open_until = 0;
  /// Current open-period length; doubles on failed half-open trials.
  Chronon cooldown = 0;
  int32_t consecutive_failures = 0;
  int64_t failures = 0;
  int64_t successes = 0;
  /// EWMA failure-rate estimate driving the deadline shrink.
  double ewma_failure = 0.0;
};

/// The online proxy scheduling engine. Not thread-safe; drive it from a
/// single chronon loop.
class OnlineScheduler {
 public:
  /// `policy` must outlive the scheduler. `num_chronons` bounds the epoch.
  OnlineScheduler(uint32_t num_resources, Chronon num_chronons,
                  BudgetVector budget, Policy* policy,
                  SchedulerOptions options = {});

  OnlineScheduler(const OnlineScheduler&) = delete;
  OnlineScheduler& operator=(const OnlineScheduler&) = delete;

  /// Registers CEIs arriving at chronon `now`. Must be called before
  /// Step(now); `cei` pointers must stay valid for the scheduler's lifetime.
  /// Rejects CEIs that are empty or whose capture window already passed.
  Status AddArrival(const Cei* cei, Chronon now);

  /// Registers a server push of `resource` delivered at chronon `t`
  /// (paper Section III: "occasionally a server may push an update").
  /// Pushed content captures every EI on the resource active at `t` for
  /// free — no probe budget is consumed and nothing is written to the
  /// Schedule. `t` must not precede the next Step.
  Status AddPush(ResourceId resource, Chronon t);

  /// Executes chronon `now` (steps must use strictly increasing chronons):
  /// selects and issues probes, updates capture state, expires CEIs. If
  /// `schedule` is non-null, issued probes are recorded in it.
  /// Returns the resources probed this chronon via `probed` if non-null.
  Status Step(Chronon now, Schedule* schedule,
              std::vector<ResourceId>* probed = nullptr);

  /// Called with every CEI id that completes (all EIs captured).
  void set_on_cei_captured(std::function<void(const Cei&)> cb) {
    on_cei_captured_ = std::move(cb);
  }
  /// Called with every CEI id that dies (an EI expired uncaptured).
  void set_on_cei_expired(std::function<void(const Cei&)> cb) {
    on_cei_expired_ = std::move(cb);
  }

  const SchedulerStats& stats() const { return stats_; }

  /// Every probe attempt with its outcome, in issue order. Only populated
  /// when a fault injector is attached (empty otherwise); feed it to
  /// AuditFaultRun to verify the failure-handling invariants.
  const std::vector<ProbeAttempt>& attempt_log() const {
    return attempt_log_;
  }

  /// Failure-handling state of `resource`. Only meaningful when a fault
  /// injector is attached; returns a default (healthy) state otherwise.
  ResourceHealth health(ResourceId resource) const;

  /// Number of currently live candidate CEIs (diagnostics).
  size_t NumCandidateCeis() const;
  /// Number of currently active candidate EIs (diagnostics).
  size_t NumActiveEis() const { return active_.size(); }

 private:
  // Activates EIs whose start chronon is `now`, plus (for fresh arrivals)
  // EIs already in their window.
  void Activate(Chronon now);
  // Records that `cand`'s window expired uncaptured; kills the CEI when its
  // semantics can no longer be satisfied.
  void MarkFailed(const CandidateEi& cand);
  // Removes captured/failed/dead/expired entries from active_.
  void Compact(Chronon now);

  // --- Failure handling (active only when a fault injector is attached) ---
  // True iff `resource` may be probed at `now`: its breaker is not open
  // (or its cooldown elapsed, allowing the half-open trial) and no backoff
  // gate is pending.
  bool ResourceAvailable(ResourceId resource, Chronon now) const;
  // Folds one attempt outcome into the resource's health: streaks, EWMA,
  // backoff gate, breaker transitions, and the fault counters.
  void RecordOutcome(ResourceId resource, Chronon now, bool success,
                     double cost);
  // Deadline shrink for EIs on `resource` (0 on healthy resources).
  Chronon ShrinkFor(ResourceId resource) const;
  // The chronon at which the policy should value `cand`: `now`, moved
  // later by the resource's deadline shrink (clamped into the EI window).
  Chronon EffectiveNow(const CandidateEi& cand, Chronon now) const;

  uint32_t num_resources_;
  Chronon num_chronons_;
  BudgetVector budget_;
  Policy* policy_;
  SchedulerOptions options_;

  // Owned CEI scheduling states; pointers into this deque-like storage are
  // stable because we never erase.
  std::vector<std::unique_ptr<CeiState>> states_;
  // Currently active candidate EIs (window contains the current chronon).
  std::vector<CandidateEi> active_;
  // pending_by_start_[t] = EIs becoming active at chronon t.
  std::vector<std::vector<CandidateEi>> pending_by_start_;
  // pushes_by_chronon_[t] = resources whose servers push at chronon t.
  std::vector<std::vector<ResourceId>> pushes_by_chronon_;
  // Scratch: marks resources whose content is available this step (R_ids:
  // successful probes and pushes) — these capture their active EIs.
  std::vector<uint8_t> probed_now_;
  // Scratch: marks resources contacted this step (attempts and pushes),
  // successful or not; dedups the greedy walk. Equal to probed_now_ when no
  // injector is attached.
  std::vector<uint8_t> attempted_now_;

  // Per-resource failure-handling state; empty when no injector is set.
  std::vector<ResourceHealth> health_;
  std::vector<ProbeAttempt> attempt_log_;

  Chronon last_step_ = -1;
  SchedulerStats stats_;
  std::function<void(const Cei&)> on_cei_captured_;
  std::function<void(const Cei&)> on_cei_expired_;
};

}  // namespace webmon

#endif  // WEBMON_ONLINE_ONLINE_SCHEDULER_H_
