#include "online/ingestion_driver.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <tuple>

#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace webmon {
namespace {

// Producer event i is released once the proxy clock reaches a chronon t
// with i * horizon < (t + 1) * quota — each lane's quota spread evenly
// across the epoch. The ticking lane waits for the matching count before
// each chronon; both sides use the same formula, so neither can starve the
// other and every event lands inside the epoch.
bool Released(int64_t i, Chronon t, Chronon horizon, int64_t quota) {
  return i * horizon < (t + 1) * quota;
}

int64_t ReleasedCount(Chronon t, Chronon horizon, int64_t quota) {
  return std::min<int64_t>(quota, ((t + 1) * quota - 1) / horizon + 1);
}

void ProduceOne(Proxy& proxy, Rng& rng, std::vector<CeiId>& owned,
                const IngestionDriverOptions& options) {
  const Chronon base = proxy.now();
  if (rng.Bernoulli(options.push_prob)) {
    // Push rejections are impossible here (valid resource, inside the
    // epoch), but tolerate them: the log is the source of truth.
    (void)proxy.Push(
        static_cast<ResourceId>(rng.UniformU64(options.num_resources)));
    return;
  }
  if (!owned.empty() && rng.Bernoulli(options.cancel_prob)) {
    // Cancel a random one of this lane's own accepted submits. Swap-remove
    // keeps the pool duplicate-free, so the mailbox's duplicate-cancel
    // rejection never fires from the driver; the cancel itself may still be
    // a scheduler no-op when the target already captured/expired.
    const size_t pick = static_cast<size_t>(rng.UniformU64(owned.size()));
    const CeiId victim = owned[pick];
    owned[pick] = owned.back();
    owned.pop_back();
    (void)proxy.Cancel(victim);
    return;
  }
  std::vector<std::tuple<ResourceId, Chronon, Chronon>> eis;
  const uint64_t rank = 1 + rng.UniformU64(3);
  for (uint64_t e = 0; e < rank; ++e) {
    const auto r =
        static_cast<ResourceId>(rng.UniformU64(options.num_resources));
    const Chronon s = base + static_cast<Chronon>(rng.UniformU64(6));
    eis.emplace_back(r, s, s + static_cast<Chronon>(rng.UniformU64(12)));
  }
  // Windows anchored at the live clock can only be rejected when the clamp
  // empties them at the epoch's edge; those late needs simply don't exist.
  auto id = proxy.Submit(eis, 0.5 + rng.UniformDouble(),
                         static_cast<uint32_t>(rng.UniformU64(
                             static_cast<uint64_t>(rank) + 1)));
  if (id.ok()) owned.push_back(*id);
}

}  // namespace

StatusOr<IngestionRunResult> RunConcurrentIngestion(
    std::unique_ptr<Policy> policy, const IngestionDriverOptions& options) {
  if (policy == nullptr) {
    return Status::InvalidArgument("ingestion driver: policy must not be "
                                   "null");
  }
  if (options.producer_threads < 1) {
    return Status::InvalidArgument("ingestion driver: need >= 1 producer");
  }
  if (options.horizon < 1 || options.events_per_producer < 0) {
    return Status::InvalidArgument("ingestion driver: bad workload shape");
  }
  const int producers = options.producer_threads;
  const int64_t quota = options.events_per_producer;

  Proxy proxy(options.num_resources, options.horizon,
              BudgetVector::Uniform(options.budget), std::move(policy),
              options.scheduler);
  IngestionRunResult result;
  proxy.set_on_cei_captured([&result, &proxy](CeiId id) {
    result.captured.emplace_back(proxy.now(), id);
  });
  proxy.set_on_cei_expired([&result, &proxy](CeiId id) {
    result.expired.emplace_back(proxy.now(), id);
  });
  proxy.set_on_cei_cancelled([&result, &proxy](CeiId id) {
    result.cancelled.emplace_back(proxy.now(), id);
  });

  std::atomic<int64_t> events{0};
  Status tick_status = Status::OK();  // written only by the ticking lane
  Stopwatch wall;
  // Lane 0 ticks; lanes 1..producers stream events. The pool gives every
  // task its own lane, so all of them run concurrently.
  ThreadPool pool(producers + 1);
  pool.ParallelFor(producers + 1, [&](int lane) {
    if (lane == 0) {
      for (Chronon t = 0; t < options.horizon; ++t) {
        const int64_t want = static_cast<int64_t>(producers) *
                             ReleasedCount(t, options.horizon, quota);
        while (events.load(std::memory_order_acquire) < want) {
          std::this_thread::yield();
        }
        Stopwatch tick;
        auto probed = proxy.Tick();
        const double seconds = tick.ElapsedSeconds();
        result.tick_seconds += seconds;
        result.max_tick_seconds = std::max(result.max_tick_seconds, seconds);
        if (!probed.ok()) {
          tick_status = probed.status();
          // Unblock any producer still gated on the clock.
          events.store((static_cast<int64_t>(producers) + 1) * quota,
                       std::memory_order_release);
          return;
        }
      }
      return;
    }
    Rng rng(options.seed ^ (0x1A9E57ULL + static_cast<uint64_t>(lane)));
    std::vector<CeiId> owned;  // this lane's cancellable submits
    for (int64_t i = 0; i < quota; ++i) {
      while (!Released(i, proxy.now(), options.horizon, quota) &&
             !proxy.Done()) {
        std::this_thread::yield();
      }
      ProduceOne(proxy, rng, owned, options);
      events.fetch_add(1, std::memory_order_release);
    }
  });
  result.wall_seconds = wall.ElapsedSeconds();
  WEBMON_RETURN_IF_ERROR(tick_status);

  result.log = proxy.arrival_log();
  result.ingestion = proxy.ingestion_stats();
  result.stats = proxy.stats();
  for (ResourceId r = 0; r < options.num_resources; ++r) {
    result.probes.push_back(proxy.schedule().ProbesOf(r));
  }
  result.attempts = proxy.attempt_log();
  result.completeness = proxy.CompletenessSoFar();
  return result;
}

Status VerifyReplayIdentity(const IngestionRunResult& result,
                            std::unique_ptr<Policy> policy,
                            const IngestionDriverOptions& options) {
  auto replay =
      ReplayArrivalLog(result.log, options.num_resources, options.horizon,
                       BudgetVector::Uniform(options.budget),
                       std::move(policy), options.scheduler);
  WEBMON_RETURN_IF_ERROR(replay.status());
  auto mismatch = [](const std::string& what) {
    return Status::Internal("replay diverged from the concurrent run: " +
                            what);
  };
  for (ResourceId r = 0; r < options.num_resources; ++r) {
    if (result.probes[r] != replay->schedule.ProbesOf(r)) {
      return mismatch("probe stream of resource " + std::to_string(r));
    }
  }
  const SchedulerStats& a = result.stats;
  const SchedulerStats& b = replay->stats;
  if (a.probes_issued != b.probes_issued) return mismatch("probes_issued");
  if (a.ceis_seen != b.ceis_seen) return mismatch("ceis_seen");
  if (a.eis_seen != b.eis_seen) return mismatch("eis_seen");
  if (a.ceis_captured != b.ceis_captured) return mismatch("ceis_captured");
  if (a.ceis_expired != b.ceis_expired) return mismatch("ceis_expired");
  if (a.ceis_cancelled != b.ceis_cancelled) {
    return mismatch("ceis_cancelled");
  }
  if (a.cancels_noop != b.cancels_noop) return mismatch("cancels_noop");
  if (a.eis_captured != b.eis_captured) return mismatch("eis_captured");
  if (a.pushes_delivered != b.pushes_delivered) {
    return mismatch("pushes_delivered");
  }
  if (a.probes_failed != b.probes_failed) return mismatch("probes_failed");
  if (a.probes_retried != b.probes_retried) return mismatch("probes_retried");
  if (a.breaker_trips != b.breaker_trips) return mismatch("breaker_trips");
  if (a.drained_arrivals != b.drained_arrivals) {
    return mismatch("drained_arrivals");
  }
  if (result.captured != replay->captured) {
    return mismatch("capture callback stream");
  }
  if (result.expired != replay->expired) {
    return mismatch("expiry callback stream");
  }
  if (result.cancelled != replay->cancelled) {
    return mismatch("cancellation callback stream");
  }
  if (result.attempts.size() != replay->attempts.size()) {
    return mismatch("attempt log length");
  }
  for (size_t i = 0; i < result.attempts.size(); ++i) {
    if (!(result.attempts[i] == replay->attempts[i])) {
      return mismatch("attempt " + std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace webmon
