#include "online/run.h"

#include <string>
#include <utility>
#include <vector>

#include "model/completeness.h"
#include "util/stopwatch.h"

namespace webmon {

StatusOr<OnlineRunResult> RunOnline(const ProblemInstance& problem,
                                    Policy* policy,
                                    SchedulerOptions options) {
  return RunOnlineWithChurn(problem, policy, {}, std::move(options));
}

StatusOr<OnlineRunResult> RunOnlineWithChurn(
    const ProblemInstance& problem, Policy* policy,
    const std::vector<CancelEvent>& cancels, SchedulerOptions options) {
  if (policy == nullptr) {
    return Status::InvalidArgument("RunOnline: policy must not be null");
  }
  const Chronon k = problem.num_chronons();

  // Bucket CEIs by arrival chronon so the proxy only learns of each CEI at
  // its reveal time (the online setting of Section IV).
  std::vector<std::vector<const Cei*>> arrivals(static_cast<size_t>(k));
  for (const Cei* cei : problem.AllCeis()) {
    arrivals[static_cast<size_t>(cei->arrival)].push_back(cei);
  }

  // Bucket cancels the same way. Validation up front keeps the per-chronon
  // loop a pure RemoveCeiBatch call.
  std::vector<std::vector<CeiId>> cancel_batches(static_cast<size_t>(k));
  for (const CancelEvent& cancel : cancels) {
    if (cancel.chronon < 0 || cancel.chronon >= k) {
      return Status::OutOfRange("RunOnlineWithChurn: cancel chronon " +
                                std::to_string(cancel.chronon) +
                                " outside the epoch");
    }
    cancel_batches[static_cast<size_t>(cancel.chronon)].push_back(cancel.id);
  }

  OnlineRunResult result{Schedule(problem.num_resources(), k),
                         SchedulerStats{}, 0.0, 0.0, 0.0, {}};
  OnlineScheduler scheduler(problem.num_resources(), k, problem.budget(),
                            policy, options);

  Stopwatch watch;
  for (Chronon t = 0; t < k; ++t) {
    WEBMON_RETURN_IF_ERROR(
        scheduler.AddArrivalBatch(arrivals[static_cast<size_t>(t)], t));
    WEBMON_RETURN_IF_ERROR(
        scheduler.RemoveCeiBatch(cancel_batches[static_cast<size_t>(t)], t));
    WEBMON_RETURN_IF_ERROR(scheduler.Step(t, &result.schedule));
  }
  result.wall_seconds = watch.ElapsedSeconds();

  result.stats = scheduler.stats();
  result.attempts = scheduler.attempt_log();
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.ei_completeness = EiCompleteness(problem, result.schedule);
  return result;
}

}  // namespace webmon
