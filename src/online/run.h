// Convenience driver: run the online algorithm over a whole ProblemInstance.

#ifndef WEBMON_ONLINE_RUN_H_
#define WEBMON_ONLINE_RUN_H_

#include "model/problem.h"
#include "model/schedule.h"
#include "online/online_scheduler.h"
#include "util/status.h"

namespace webmon {

/// Result of an online run over a full instance.
struct OnlineRunResult {
  Schedule schedule;
  SchedulerStats stats;
  /// Gained completeness per Eq. 1 (schedule-evaluated; equals
  /// stats.ceis_captured / TotalCeis by construction).
  double completeness = 0.0;
  /// EI-level completeness (Figure 10 upper-bound denominator).
  double ei_completeness = 0.0;
  /// Wall time spent inside the chronon loop, in seconds (Section V-D
  /// runtime metric, to be normalized per EI by the caller).
  double wall_seconds = 0.0;
  /// Probe attempts with outcomes, in issue order. Only populated when the
  /// run used a fault injector (empty otherwise).
  std::vector<ProbeAttempt> attempts;
};

/// Reveals each CEI at its arrival chronon and steps the scheduler through
/// the instance's whole epoch under `policy`.
StatusOr<OnlineRunResult> RunOnline(const ProblemInstance& problem,
                                    Policy* policy,
                                    SchedulerOptions options = {});

/// A scripted mid-epoch cancellation: CEI `id` is removed at the top of
/// chronon `chronon`, before that chronon's probes are decided.
struct CancelEvent {
  Chronon chronon = 0;
  CeiId id = 0;
};

/// RunOnline with profile churn: each cancel in `cancels` is applied via
/// OnlineScheduler::RemoveCeiBatch at the top of its chronon (after that
/// chronon's arrivals, before Step), matching the proxy's drain order of
/// submits-then-cancels. Every cancel must land at or after its target's
/// arrival chronon and inside the epoch; a cancel of an already
/// captured/expired CEI is the documented no-op. Used by the churn-fuzz
/// differential suite to compare against a rebuild-from-scratch reference.
StatusOr<OnlineRunResult> RunOnlineWithChurn(
    const ProblemInstance& problem, Policy* policy,
    const std::vector<CancelEvent>& cancels, SchedulerOptions options = {});

}  // namespace webmon

#endif  // WEBMON_ONLINE_RUN_H_
