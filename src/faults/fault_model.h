// Deterministic, seed-driven per-resource failure model for probes.
//
// Four failure mechanisms, each configurable per resource (netdata treats
// collection failures as first-class state; we model the causes):
//   * transient errors — independent Bernoulli failure per attempt,
//   * burst outages — a Gilbert-Elliott two-state chain per resource whose
//     bad state fails probes with high probability; the chain advances once
//     per chronon regardless of probing, so the outage pattern of a run is
//     a function of (spec, seed) alone,
//   * rate limiting — a fixed window of W chronons aligned to the epoch
//     start admits at most M attempts; the rest are rejected,
//   * timeouts — the probe's latency exceeds the chronon, so the reply
//     cannot count (the chronon is the indivisible scheduling unit).
// All randomness is derived from one 64-bit seed with independent streams
// per resource, and FaultSpec serializes to a line-oriented text format, so
// every fault-injected experiment is exactly reproducible.

#ifndef WEBMON_FAULTS_FAULT_MODEL_H_
#define WEBMON_FAULTS_FAULT_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/probe_outcome.h"
#include "model/types.h"
#include "util/rng.h"
#include "util/status.h"

namespace webmon {

/// Failure behavior of one resource. The default-constructed profile is the
/// ideal network: every probe succeeds.
struct ResourceFaultProfile {
  /// Bernoulli failure probability per attempt while the resource is in the
  /// good state of its outage chain.
  double transient_error_prob = 0.0;
  /// Probability an attempt's latency exceeds the chronon (drawn before the
  /// error draws: a timed-out probe never reports an error).
  double timeout_prob = 0.0;
  /// Gilbert-Elliott chain: per-chronon probability of entering the bad
  /// state from good, and of leaving it again.
  double outage_enter_prob = 0.0;
  double outage_exit_prob = 1.0;
  /// Failure probability per attempt while in the bad state.
  double outage_fail_prob = 1.0;
  /// Fixed-window rate limiter: at most rate_limit_max attempts per window
  /// of rate_limit_window chronons (windows aligned to chronon 0).
  /// rate_limit_window == 0 disables the limiter.
  Chronon rate_limit_window = 0;
  int64_t rate_limit_max = 0;

  /// True iff this profile can never fail a probe.
  bool IsIdeal() const;
  Status Validate() const;

  friend bool operator==(const ResourceFaultProfile& a,
                         const ResourceFaultProfile& b);
};

/// One named fleet-level incident domain: a shared upstream (CDN, ISP,
/// data center) modeled as its own Gilbert-Elliott chain. While the chain
/// is in its bad state, probes to every covered resource fail with
/// `fail_prob` — composed on top of (before) the per-resource profiles, so
/// outages correlate across the domain's members. The chain advances once
/// per chronon on its own RNG stream regardless of probing; the incident
/// pattern of a run is a function of (spec, seed) alone.
struct IncidentDomain {
  /// Domain label ("cdn-east"); unique within a spec, no whitespace.
  std::string name;
  /// Explicit member resources (kept sorted and deduplicated).
  std::vector<ResourceId> members;
  /// Modulo selector: when stride > 0, also covers every resource r with
  /// r % stride == offset (a cheap way to spread a domain over a fleet of
  /// unknown size). 0 disables the selector.
  uint32_t stride = 0;
  uint32_t offset = 0;
  /// Per-chronon probability of entering / leaving the bad state.
  double enter_prob = 0.0;
  double exit_prob = 1.0;
  /// Failure probability per attempt to a covered resource while bad.
  double fail_prob = 1.0;

  /// True iff the domain covers `resource`.
  bool Covers(ResourceId resource) const;
  /// True iff this domain can never fail a probe.
  bool IsIdeal() const;
  Status Validate() const;

  friend bool operator==(const IncidentDomain& a, const IncidentDomain& b);
};

/// Failure model of a whole resource fleet: a default profile plus
/// per-resource overrides.
struct FaultSpec {
  ResourceFaultProfile defaults;
  std::map<ResourceId, ResourceFaultProfile> overrides;
  /// Fleet-level incident domains, in declaration order.
  std::vector<IncidentDomain> incidents;
  /// Cap on the total budget the scheduler may spend on retries — attempts
  /// issued to a resource with a live failure streak — over one run, in
  /// budget units (cost units under the varying-cost extension). Once
  /// spent, resources with a live streak stop being offered to the policy
  /// for the rest of the run; the budget flows to fresh work instead.
  /// Negative = unlimited.
  double retry_budget = -1.0;

  /// The profile governing `resource`.
  const ResourceFaultProfile& For(ResourceId resource) const;
  /// True iff no resource can ever fail.
  bool IsIdeal() const;
  Status Validate() const;
};

/// Serializes `spec` to the versioned line-oriented text format:
///   webmon-faults 1
///   retrybudget <units>           (only when a cap is set)
///   default transient <p> timeout <p> outage <enter> <exit> <fail>
///           ratelimit <window> <max>
///   resource <id> transient <p> ... (same fields)
///   incident <name> enter <p> exit <p> fail <p> every <stride> offset <k>
///           members <id>...   (selector and/or members; members read the
///           rest of the line, so they must come last)
std::string FaultSpecToText(const FaultSpec& spec);
/// Parses the text format; the result is validated.
StatusOr<FaultSpec> FaultSpecFromText(const std::string& text);
Status SaveFaultSpecToFile(const FaultSpec& spec, const std::string& path);
StatusOr<FaultSpec> LoadFaultSpecFromFile(const std::string& path);

/// The stateful injector: one per experiment run. Decides the outcome of
/// every probe attempt. Deterministic: two runs with the same (spec, seed,
/// attempt sequence) produce the same outcomes, and the outage chain of a
/// resource depends only on the chronon, never on how often it was probed.
class FaultInjector {
 public:
  FaultInjector(FaultSpec spec, uint32_t num_resources, uint64_t seed);

  /// Outcome of probing `resource` at chronon `t`. Chronons must be
  /// non-decreasing per resource (the scheduler's chronon loop guarantees
  /// this). CHECK-fails on an out-of-range resource.
  ProbeOutcome OnProbe(ResourceId resource, Chronon t);

  /// True iff `resource` is in the bad (outage) state at chronon `t`;
  /// advances its chain to `t`. Diagnostics and tests.
  bool InOutage(ResourceId resource, Chronon t);

  /// True iff incident domain `domain` (index into spec().incidents) is in
  /// its bad state at chronon `t`; advances the fleet chain to `t`.
  /// Ground truth — the scheduler's detector must never consult this for
  /// scheduling decisions, only for the detected/missed-window counters.
  bool FleetIncidentActive(size_t domain, Chronon t);

  /// True iff any incident domain covering `resource` is active at `t`.
  bool ResourceInIncident(ResourceId resource, Chronon t);

  /// Indices into spec().incidents of the domains covering `resource`.
  const std::vector<uint32_t>& DomainsCovering(ResourceId resource) const;

  size_t num_incident_domains() const { return domains_.size(); }

  const FaultSpec& spec() const { return spec_; }
  uint64_t seed() const { return seed_; }
  uint32_t num_resources() const {
    return static_cast<uint32_t>(states_.size());
  }

 private:
  struct ResourceState {
    Rng probe_rng;
    Rng chain_rng;
    bool in_bad_state = false;
    Chronon chain_advanced_to = -1;
    Chronon rate_window_index = -1;
    int64_t rate_window_attempts = 0;
  };

  struct DomainState {
    Rng chain_rng;
    bool active = false;
    Chronon chain_advanced_to = -1;
  };

  void AdvanceChain(ResourceState& state, const ResourceFaultProfile& profile,
                    Chronon t);
  void AdvanceDomain(size_t domain, Chronon t);

  FaultSpec spec_;
  uint64_t seed_;
  std::vector<ResourceState> states_;
  // Fleet incident chains, one per spec().incidents entry, plus the
  // resource -> covering-domains index (empty vectors shared via
  // no_domains_ so uncovered lookups stay allocation-free).
  std::vector<DomainState> domains_;
  std::vector<std::vector<uint32_t>> covering_;
  const std::vector<uint32_t> no_domains_;
};

}  // namespace webmon

#endif  // WEBMON_FAULTS_FAULT_MODEL_H_
