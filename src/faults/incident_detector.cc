#include "faults/incident_detector.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "util/check.h"
#include "util/rng.h"

namespace webmon {

IncidentDetector::IncidentDetector(const FaultSpec& spec,
                                   uint32_t num_resources,
                                   const FaultHandlingOptions& options)
    : options_(options) {
  if (spec.incidents.empty()) return;
  domains_.resize(spec.incidents.size());
  covering_.resize(num_resources);
  for (size_t d = 0; d < spec.incidents.size(); ++d) {
    for (uint32_t r = 0; r < num_resources; ++r) {
      if (spec.incidents[d].Covers(r)) {
        domains_[d].members.push_back(r);
        covering_[r].push_back(static_cast<uint32_t>(d));
      }
    }
  }
}

void IncidentDetector::AdvanceOne(Chronon t) {
  const Chronon window = std::max<Chronon>(options_.incident_window, 1);
  for (size_t d = 0; d < domains_.size(); ++d) {
    Domain& domain = domains_[d];
    if (domain.members.empty()) continue;
    while (!domain.window.empty() &&
           domain.window.front().chronon < t - window) {
      domain.window_attempts -= domain.window.front().attempts;
      domain.window_failures -= domain.window.front().failures;
      domain.window.pop_front();
    }
    if (!domain.open) {
      if (domain.window_attempts >= options_.incident_min_attempts &&
          static_cast<double>(domain.window_failures) >=
              options_.incident_open_threshold *
                  static_cast<double>(domain.window_attempts)) {
        domain.open = true;
        domain.opened_at = t;
        domain.trial_successes = 0;
        ++stats_.opens;
      }
    }
    if (domain.open) {
      const Chronon interval =
          std::max<Chronon>(options_.incident_reprobe_interval, 1);
      if ((t - domain.opened_at) % interval == 0) {
        // Pseudo-random but deterministic trial choice: a pure function of
        // (jitter_seed, domain, chronon), so replays pick the same member
        // while successive trials spread over the domain.
        uint64_t state = options_.jitter_seed ^
                         (0x94D049BB133111EBULL * (d + 1)) ^
                         (static_cast<uint64_t>(t) << 17);
        const uint64_t draw = SplitMix64Next(state);
        domain.trial_resource =
            domain.members[draw % domain.members.size()];
        domain.trial_chronon = t;
      }
    }
  }
}

void IncidentDetector::BeginChronon(Chronon now) {
  WEBMON_CHECK(now > cursor_)
      << "incident detector chronons must strictly increase";
  // Catch up one chronon at a time: eviction can raise the windowed rate
  // (old successes aging out), so the open condition must be evaluated at
  // every chronon regardless of the caller's stepping pattern.
  while (cursor_ < now) AdvanceOne(++cursor_);
}

void IncidentDetector::RecordAttempt(ResourceId resource, Chronon now,
                                     bool success) {
  WEBMON_CHECK(now == cursor_)
      << "RecordAttempt must follow BeginChronon for the same chronon";
  if (resource >= covering_.size()) return;
  for (uint32_t d : covering_[resource]) {
    Domain& domain = domains_[d];
    if (domain.window.empty() || domain.window.back().chronon != now) {
      domain.window.push_back(WindowEntry{now, 0, 0});
    }
    ++domain.window.back().attempts;
    ++domain.window_attempts;
    if (!success) {
      ++domain.window.back().failures;
      ++domain.window_failures;
    }
    if (domain.open && domain.trial_chronon == now &&
        domain.trial_resource == resource) {
      if (success) {
        if (++domain.trial_successes >= options_.incident_close_successes) {
          // Close and forget the incident-era window: the stale failures
          // must not instantly re-open the breaker.
          domain.open = false;
          domain.trial_successes = 0;
          domain.window.clear();
          domain.window_attempts = 0;
          domain.window_failures = 0;
          ++stats_.closes;
        }
      } else {
        domain.trial_successes = 0;
      }
    }
  }
}

bool IncidentDetector::TrialDue(size_t domain, ResourceId* resource) const {
  const Domain& d = domains_[domain];
  if (!d.open || d.trial_chronon != cursor_) return false;
  *resource = d.trial_resource;
  return true;
}

bool IncidentDetector::OpenFor(ResourceId resource) const {
  if (resource >= covering_.size()) return false;
  for (uint32_t d : covering_[resource]) {
    if (domains_[d].open) return true;
  }
  return false;
}

bool IncidentDetector::Suppressed(ResourceId resource) const {
  if (resource >= covering_.size()) return false;
  bool any_open = false;
  for (uint32_t d : covering_[resource]) {
    const Domain& domain = domains_[d];
    if (!domain.open) continue;
    any_open = true;
    if (domain.trial_chronon == cursor_ &&
        domain.trial_resource == resource) {
      return false;  // this chronon's end-of-incident trial goes through
    }
  }
  return any_open;
}

Status AuditIncidentRun(const FaultSpec& spec, uint32_t num_resources,
                        const std::vector<ProbeAttempt>& attempts,
                        const FaultHandlingOptions& options,
                        IncidentAuditReport* report) {
  auto fail = [](const ProbeAttempt& a, const std::string& what) {
    std::ostringstream os;
    os << "incident audit: attempt (resource " << a.resource << ", chronon "
       << a.chronon << "): " << what;
    return Status::FailedPrecondition(os.str());
  };
  if (spec.incidents.empty() || !options.incident_detection) {
    // Without domains (or with detection off) no attempt may carry the
    // detector tag.
    for (const ProbeAttempt& a : attempts) {
      if ((a.incident & ProbeAttempt::kDetectorOpen) != 0) {
        return fail(a, "tagged kDetectorOpen without an active detector");
      }
    }
    if (report != nullptr) *report = IncidentAuditReport{};
    return Status::OK();
  }
  IncidentDetector detector(spec, num_resources, options);
  IncidentAuditReport derived;
  Chronon cursor = -1;
  for (const ProbeAttempt& a : attempts) {
    if (a.chronon < cursor) {
      return fail(a, "attempt log not in chronon order");
    }
    if (a.chronon > cursor) {
      cursor = a.chronon;
      detector.BeginChronon(cursor);
    }
    const bool open = detector.OpenFor(a.resource);
    const bool tagged = (a.incident & ProbeAttempt::kDetectorOpen) != 0;
    if (open != tagged) {
      return fail(a, open ? "missing kDetectorOpen tag (detector was open)"
                          : "tagged kDetectorOpen but the detector was "
                            "closed");
    }
    if (detector.Suppressed(a.resource)) {
      return fail(a, "issued while the fleet breaker suppressed the "
                     "resource (not this chronon's trial)");
    }
    if (tagged) ++derived.trial_attempts;
    detector.RecordAttempt(a.resource, a.chronon,
                           ProbeSucceeded(a.outcome));
  }
  derived.opens = detector.stats().opens;
  if (report != nullptr) *report = derived;
  return Status::OK();
}

}  // namespace webmon
