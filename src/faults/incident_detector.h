// Online fleet-incident detection from probe outcomes alone.
//
// The scheduler never receives an oracle signal that a correlated incident
// started (in the spirit of Mahmoody et al., adaptive probing schedules for
// rapid event detection): all it sees is its own attempt stream. The
// IncidentDetector turns that stream into a per-domain fleet breaker:
//   * a windowed failure-rate estimator aggregates the recent attempts to
//     each incident domain's covered resources,
//   * once the window holds enough attempts and their failure rate crosses
//     the open threshold, the domain's fleet breaker OPENS — the scheduler
//     deprioritizes every covered resource, redirecting the budget to
//     unaffected work,
//   * while open, one pseudo-randomly chosen covered resource is re-probed
//     every reprobe_interval chronons (the end-of-incident trial); enough
//     consecutive successful trials CLOSE the breaker again.
// All state is a pure function of (options, chronon sequence, attempt
// stream), so runs replay byte-identically at any thread count and the
// auditor (AuditIncidentRun) can re-derive every decision from the attempt
// log.
//
// The detector is shared between OnlineScheduler (which feeds it live
// outcomes) and the audit layer (which replays a recorded log against it);
// it lives in src/faults because it needs the FaultSpec's domain coverage,
// never the injector's chain state.

#ifndef WEBMON_FAULTS_INCIDENT_DETECTOR_H_
#define WEBMON_FAULTS_INCIDENT_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "faults/fault_model.h"
#include "model/probe_outcome.h"
#include "model/types.h"
#include "util/status.h"

namespace webmon {

/// Detector-side counters (the scheduler folds them into SchedulerStats).
struct IncidentDetectorStats {
  /// Fleet-breaker open / close transitions across all domains.
  int64_t opens = 0;
  int64_t closes = 0;
};

class IncidentDetector {
 public:
  /// Resolves `spec.incidents` coverage against `resources` in
  /// [0, num_resources); domains without a covered resource are inert.
  /// Only the incident_* fields of `options` are consulted.
  IncidentDetector(const FaultSpec& spec, uint32_t num_resources,
                   const FaultHandlingOptions& options);

  /// Advances the detector to chronon `now` (catching up over gaps one
  /// chronon at a time, so stepping patterns cannot change decisions):
  /// evicts window entries older than incident_window, evaluates the open
  /// condition per domain, and selects this chronon's trial resources.
  /// Call before consulting Suppressed()/OpenFor() for `now`.
  void BeginChronon(Chronon now);

  /// Folds one issued attempt into the windows of every covering domain;
  /// trial outcomes drive the close counter. Call for every attempt, after
  /// BeginChronon(now).
  void RecordAttempt(ResourceId resource, Chronon now, bool success);

  /// True iff the fleet breaker of `domain` is open.
  bool Open(size_t domain) const { return domains_[domain].open; }
  /// True iff `domain` is open and scheduled an end-of-incident trial for
  /// the current chronon; `*resource` receives the trial member. The
  /// scheduler issues the trial probe itself — the detector only picks it.
  bool TrialDue(size_t domain, ResourceId* resource) const;
  /// True iff any domain covering `resource` is open.
  bool OpenFor(ResourceId resource) const;
  /// True iff `resource` must be withheld at the current chronon: a
  /// covering domain is open and the resource is not the trial of any open
  /// covering domain.
  bool Suppressed(ResourceId resource) const;

  size_t num_domains() const { return domains_.size(); }
  const IncidentDetectorStats& stats() const { return stats_; }

 private:
  // Per-chronon aggregate of the attempts a domain's members received.
  struct WindowEntry {
    Chronon chronon = 0;
    int32_t attempts = 0;
    int32_t failures = 0;
  };
  struct Domain {
    std::vector<ResourceId> members;  // resolved coverage, sorted
    std::deque<WindowEntry> window;
    int64_t window_attempts = 0;
    int64_t window_failures = 0;
    bool open = false;
    Chronon opened_at = 0;
    int32_t trial_successes = 0;
    // The trial resource selected for the current chronon; valid iff
    // trial_chronon equals the BeginChronon cursor.
    ResourceId trial_resource = 0;
    Chronon trial_chronon = -1;
  };

  void AdvanceOne(Chronon t);

  FaultHandlingOptions options_;
  std::vector<Domain> domains_;
  // covering_[r] = indices of domains covering r (empty shared fallback).
  std::vector<std::vector<uint32_t>> covering_;
  const std::vector<uint32_t> no_domains_;
  Chronon cursor_ = -1;
  IncidentDetectorStats stats_;
};

/// Derived counters of an incident audit; attempt-log evaluated.
struct IncidentAuditReport {
  /// Attempts tagged kDetectorOpen (fleet-breaker trials).
  int64_t trial_attempts = 0;
  /// Fleet-breaker open transitions the replay derived.
  int64_t opens = 0;
};

/// Replays `attempts` against a fresh IncidentDetector (the same pure state
/// machine the scheduler ran) and verifies the incident contract:
///   * the kDetectorOpen tag of every attempt matches the replayed
///     detector's belief at issue time,
///   * no attempt was issued to a resource the fleet breaker suppressed —
///     while a covering domain is open, only its trial resource may be
///     probed.
/// Returns OK iff every invariant holds; `report` (optional) receives the
/// derived counters to cross-check SchedulerStats. Specs without incident
/// domains audit trivially (every tag must be 0).
Status AuditIncidentRun(const FaultSpec& spec, uint32_t num_resources,
                        const std::vector<ProbeAttempt>& attempts,
                        const FaultHandlingOptions& options,
                        IncidentAuditReport* report = nullptr);

}  // namespace webmon

#endif  // WEBMON_FAULTS_INCIDENT_DETECTOR_H_
