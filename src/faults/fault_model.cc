#include "faults/fault_model.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace webmon {

namespace {

bool IsProb(double p) { return p >= 0.0 && p <= 1.0; }

Status ValidateProfile(const ResourceFaultProfile& p, const std::string& who) {
  if (!IsProb(p.transient_error_prob) || !IsProb(p.timeout_prob) ||
      !IsProb(p.outage_enter_prob) || !IsProb(p.outage_exit_prob) ||
      !IsProb(p.outage_fail_prob)) {
    return Status::InvalidArgument(who +
                                   ": probabilities must lie in [0, 1]");
  }
  if (p.rate_limit_window < 0) {
    return Status::InvalidArgument(who + ": rate_limit_window must be >= 0");
  }
  if (p.rate_limit_window > 0 && p.rate_limit_max < 0) {
    return Status::InvalidArgument(who + ": rate_limit_max must be >= 0");
  }
  if (p.outage_enter_prob > 0.0 && p.outage_exit_prob == 0.0) {
    return Status::InvalidArgument(
        who + ": an outage that can be entered must be exitable "
              "(outage_exit_prob > 0)");
  }
  return Status::OK();
}

}  // namespace

bool ResourceFaultProfile::IsIdeal() const {
  return transient_error_prob == 0.0 && timeout_prob == 0.0 &&
         (outage_enter_prob == 0.0 || outage_fail_prob == 0.0) &&
         rate_limit_window == 0;
}

Status ResourceFaultProfile::Validate() const {
  return ValidateProfile(*this, "fault profile");
}

bool operator==(const ResourceFaultProfile& a, const ResourceFaultProfile& b) {
  return a.transient_error_prob == b.transient_error_prob &&
         a.timeout_prob == b.timeout_prob &&
         a.outage_enter_prob == b.outage_enter_prob &&
         a.outage_exit_prob == b.outage_exit_prob &&
         a.outage_fail_prob == b.outage_fail_prob &&
         a.rate_limit_window == b.rate_limit_window &&
         a.rate_limit_max == b.rate_limit_max;
}

bool IncidentDomain::Covers(ResourceId resource) const {
  if (stride > 0 && resource % stride == offset) return true;
  return std::binary_search(members.begin(), members.end(), resource);
}

bool IncidentDomain::IsIdeal() const {
  return enter_prob == 0.0 || fail_prob == 0.0;
}

Status IncidentDomain::Validate() const {
  const std::string who = "incident domain '" + name + "'";
  if (name.empty()) {
    return Status::InvalidArgument("incident domains need a name");
  }
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(who + ": name must not contain "
                                     "whitespace");
    }
  }
  if (!IsProb(enter_prob) || !IsProb(exit_prob) || !IsProb(fail_prob)) {
    return Status::InvalidArgument(who +
                                   ": probabilities must lie in [0, 1]");
  }
  if (enter_prob > 0.0 && exit_prob == 0.0) {
    return Status::InvalidArgument(
        who + ": an incident that can start must be exitable "
              "(exit_prob > 0)");
  }
  if (members.empty() && stride == 0) {
    return Status::InvalidArgument(who + ": must cover at least one "
                                   "resource (members or a selector)");
  }
  if (stride > 0 && offset >= stride) {
    return Status::InvalidArgument(who + ": selector offset must be < "
                                   "stride");
  }
  if (!std::is_sorted(members.begin(), members.end()) ||
      std::adjacent_find(members.begin(), members.end()) != members.end()) {
    return Status::InvalidArgument(who + ": members must be sorted and "
                                   "unique");
  }
  return Status::OK();
}

bool operator==(const IncidentDomain& a, const IncidentDomain& b) {
  return a.name == b.name && a.members == b.members && a.stride == b.stride &&
         a.offset == b.offset && a.enter_prob == b.enter_prob &&
         a.exit_prob == b.exit_prob && a.fail_prob == b.fail_prob;
}

const ResourceFaultProfile& FaultSpec::For(ResourceId resource) const {
  auto it = overrides.find(resource);
  return it == overrides.end() ? defaults : it->second;
}

bool FaultSpec::IsIdeal() const {
  if (!defaults.IsIdeal()) return false;
  for (const auto& [resource, profile] : overrides) {
    (void)resource;
    if (!profile.IsIdeal()) return false;
  }
  for (const IncidentDomain& domain : incidents) {
    if (!domain.IsIdeal()) return false;
  }
  return true;
}

Status FaultSpec::Validate() const {
  WEBMON_RETURN_IF_ERROR(ValidateProfile(defaults, "default profile"));
  for (const auto& [resource, profile] : overrides) {
    std::ostringstream who;
    who << "resource " << resource;
    WEBMON_RETURN_IF_ERROR(ValidateProfile(profile, who.str()));
  }
  for (size_t d = 0; d < incidents.size(); ++d) {
    WEBMON_RETURN_IF_ERROR(incidents[d].Validate());
    for (size_t e = 0; e < d; ++e) {
      if (incidents[e].name == incidents[d].name) {
        return Status::InvalidArgument("duplicate incident domain '" +
                                       incidents[d].name + "'");
      }
    }
  }
  if (std::isnan(retry_budget)) {
    return Status::InvalidArgument("retry_budget must not be NaN");
  }
  return Status::OK();
}

namespace {

void AppendProfile(std::ostream& os, const ResourceFaultProfile& p) {
  os << "transient " << p.transient_error_prob << " timeout " << p.timeout_prob
     << " outage " << p.outage_enter_prob << " " << p.outage_exit_prob << " "
     << p.outage_fail_prob << " ratelimit " << p.rate_limit_window << " "
     << p.rate_limit_max;
}

Status ParseProfile(std::istringstream& in, ResourceFaultProfile& p,
                    int line_no) {
  std::string key;
  auto fail = [line_no](const std::string& what) {
    std::ostringstream os;
    os << "fault spec line " << line_no << ": " << what;
    return Status::InvalidArgument(os.str());
  };
  while (in >> key) {
    if (key == "transient") {
      if (!(in >> p.transient_error_prob)) return fail("bad transient value");
    } else if (key == "timeout") {
      if (!(in >> p.timeout_prob)) return fail("bad timeout value");
    } else if (key == "outage") {
      if (!(in >> p.outage_enter_prob >> p.outage_exit_prob >>
            p.outage_fail_prob)) {
        return fail("outage needs <enter> <exit> <fail>");
      }
    } else if (key == "ratelimit") {
      if (!(in >> p.rate_limit_window >> p.rate_limit_max)) {
        return fail("ratelimit needs <window> <max>");
      }
    } else {
      return fail("unknown field '" + key + "'");
    }
  }
  return Status::OK();
}

Status ParseIncident(std::istringstream& in, IncidentDomain& domain,
                     int line_no) {
  auto fail = [line_no](const std::string& what) {
    std::ostringstream os;
    os << "fault spec line " << line_no << ": " << what;
    return Status::InvalidArgument(os.str());
  };
  if (!(in >> domain.name)) return fail("incident needs a name");
  std::string key;
  while (in >> key) {
    if (key == "enter") {
      if (!(in >> domain.enter_prob)) return fail("bad enter value");
    } else if (key == "exit") {
      if (!(in >> domain.exit_prob)) return fail("bad exit value");
    } else if (key == "fail") {
      if (!(in >> domain.fail_prob)) return fail("bad fail value");
    } else if (key == "every") {
      if (!(in >> domain.stride)) return fail("bad every value");
    } else if (key == "offset") {
      if (!(in >> domain.offset)) return fail("bad offset value");
    } else if (key == "members") {
      // Members run to the end of the line, so they must come last.
      ResourceId id = 0;
      while (in >> id) domain.members.push_back(id);
      if (!in.eof()) return fail("bad member id");
      // total-order: operator< on integer resource ids; duplicates are
      // erased right below, and equal elements are indistinguishable.
      std::sort(domain.members.begin(), domain.members.end());
      domain.members.erase(
          std::unique(domain.members.begin(), domain.members.end()),
          domain.members.end());
    } else {
      return fail("unknown incident field '" + key + "'");
    }
  }
  return Status::OK();
}

}  // namespace

std::string FaultSpecToText(const FaultSpec& spec) {
  std::ostringstream os;
  os << "webmon-faults 1\n";
  if (spec.retry_budget >= 0.0) {
    os << "retrybudget " << spec.retry_budget << "\n";
  }
  os << "default ";
  AppendProfile(os, spec.defaults);
  os << "\n";
  for (const auto& [resource, profile] : spec.overrides) {
    os << "resource " << resource << " ";
    AppendProfile(os, profile);
    os << "\n";
  }
  for (const IncidentDomain& domain : spec.incidents) {
    os << "incident " << domain.name << " enter " << domain.enter_prob
       << " exit " << domain.exit_prob << " fail " << domain.fail_prob;
    if (domain.stride > 0) {
      os << " every " << domain.stride << " offset " << domain.offset;
    }
    if (!domain.members.empty()) {
      // Members last: the parser reads ids greedily to the end of the line.
      os << " members";
      for (ResourceId r : domain.members) os << " " << r;
    }
    os << "\n";
  }
  return os.str();
}

StatusOr<FaultSpec> FaultSpecFromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("fault spec is empty");
  }
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != "webmon-faults" ||
        version != 1) {
      return Status::InvalidArgument(
          "fault spec must start with 'webmon-faults 1'");
    }
  }
  FaultSpec spec;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind) || kind.empty() || kind[0] == '#') continue;
    if (kind == "default") {
      WEBMON_RETURN_IF_ERROR(ParseProfile(fields, spec.defaults, line_no));
    } else if (kind == "retrybudget") {
      if (!(fields >> spec.retry_budget)) {
        std::ostringstream os;
        os << "fault spec line " << line_no << ": bad retrybudget value";
        return Status::InvalidArgument(os.str());
      }
    } else if (kind == "resource") {
      ResourceId resource = 0;
      if (!(fields >> resource)) {
        std::ostringstream os;
        os << "fault spec line " << line_no << ": resource needs an id";
        return Status::InvalidArgument(os.str());
      }
      ResourceFaultProfile profile = spec.defaults;
      WEBMON_RETURN_IF_ERROR(ParseProfile(fields, profile, line_no));
      spec.overrides[resource] = profile;
    } else if (kind == "incident") {
      IncidentDomain domain;
      WEBMON_RETURN_IF_ERROR(ParseIncident(fields, domain, line_no));
      spec.incidents.push_back(std::move(domain));
    } else {
      std::ostringstream os;
      os << "fault spec line " << line_no << ": unknown record '" << kind
         << "'";
      return Status::InvalidArgument(os.str());
    }
  }
  WEBMON_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

Status SaveFaultSpecToFile(const FaultSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << FaultSpecToText(spec);
  out.flush();
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

StatusOr<FaultSpec> LoadFaultSpecFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FaultSpecFromText(buffer.str());
}

FaultInjector::FaultInjector(FaultSpec spec, uint32_t num_resources,
                             uint64_t seed)
    : spec_(std::move(spec)), seed_(seed), states_(num_resources) {
  WEBMON_CHECK(spec_.Validate().ok())
      << "FaultInjector built from an invalid spec: "
      << spec_.Validate().ToString();
  for (uint32_t r = 0; r < num_resources; ++r) {
    // Independent streams per resource: mixing the resource id through
    // SplitMix64 decorrelates neighbours, and separate probe/chain streams
    // keep the outage pattern independent of how often a resource is
    // probed.
    uint64_t stream = seed ^ (0x9E3779B97F4A7C15ULL * (r + 1));
    states_[r].probe_rng = Rng(SplitMix64Next(stream));
    states_[r].chain_rng = Rng(SplitMix64Next(stream));
  }
  if (!spec_.incidents.empty()) {
    domains_.resize(spec_.incidents.size());
    for (size_t d = 0; d < spec_.incidents.size(); ++d) {
      // Fleet chains get their own stream family (a different mixing
      // constant than the per-resource streams) so a domain never shares
      // randomness with the resources it covers.
      uint64_t stream = seed ^ (0xBF58476D1CE4E5B9ULL * (d + 1));
      domains_[d].chain_rng = Rng(SplitMix64Next(stream));
    }
    covering_.resize(num_resources);
    for (uint32_t r = 0; r < num_resources; ++r) {
      for (size_t d = 0; d < spec_.incidents.size(); ++d) {
        if (spec_.incidents[d].Covers(r)) {
          covering_[r].push_back(static_cast<uint32_t>(d));
        }
      }
    }
  }
}

void FaultInjector::AdvanceDomain(size_t domain, Chronon t) {
  const IncidentDomain& spec = spec_.incidents[domain];
  DomainState& state = domains_[domain];
  if (spec.enter_prob == 0.0 && !state.active) {
    state.chain_advanced_to = std::max(state.chain_advanced_to, t);
    return;
  }
  while (state.chain_advanced_to < t) {
    ++state.chain_advanced_to;
    if (state.active) {
      if (state.chain_rng.Bernoulli(spec.exit_prob)) state.active = false;
    } else if (state.chain_rng.Bernoulli(spec.enter_prob)) {
      state.active = true;
    }
  }
}

bool FaultInjector::FleetIncidentActive(size_t domain, Chronon t) {
  WEBMON_CHECK_LT(domain, domains_.size())
      << "fault injector asked about an unknown incident domain";
  AdvanceDomain(domain, t);
  return domains_[domain].active;
}

bool FaultInjector::ResourceInIncident(ResourceId resource, Chronon t) {
  for (uint32_t d : DomainsCovering(resource)) {
    if (FleetIncidentActive(d, t)) return true;
  }
  return false;
}

const std::vector<uint32_t>& FaultInjector::DomainsCovering(
    ResourceId resource) const {
  if (resource >= covering_.size()) return no_domains_;
  return covering_[resource];
}

void FaultInjector::AdvanceChain(ResourceState& state,
                                 const ResourceFaultProfile& profile,
                                 Chronon t) {
  if (profile.outage_enter_prob == 0.0 && !state.in_bad_state) {
    // The chain can never leave the good state: skip the draws entirely
    // (and keep chain_advanced_to moving so a later override can't warp).
    state.chain_advanced_to = t;
    return;
  }
  while (state.chain_advanced_to < t) {
    ++state.chain_advanced_to;
    if (state.in_bad_state) {
      if (state.chain_rng.Bernoulli(profile.outage_exit_prob)) {
        state.in_bad_state = false;
      }
    } else if (state.chain_rng.Bernoulli(profile.outage_enter_prob)) {
      state.in_bad_state = true;
    }
  }
}

bool FaultInjector::InOutage(ResourceId resource, Chronon t) {
  WEBMON_CHECK_LT(resource, states_.size())
      << "fault injector asked about an unknown resource";
  ResourceState& state = states_[resource];
  AdvanceChain(state, spec_.For(resource), t);
  return state.in_bad_state;
}

ProbeOutcome FaultInjector::OnProbe(ResourceId resource, Chronon t) {
  WEBMON_CHECK_LT(resource, states_.size())
      << "fault injector probed for an unknown resource";
  const ResourceFaultProfile& profile = spec_.For(resource);
  ResourceState& state = states_[resource];
  // Draw order is part of the determinism contract: fleet incident first
  // (the probe never reaches the server, so the rate limiter does not see
  // it), then rate limit (no RNG), timeout, and the outage/transient draw.
  // While no covering domain is active, no randomness is consumed, so a
  // spec whose incidents never fire stays byte-identical to one without
  // incident lines.
  for (uint32_t d : DomainsCovering(resource)) {
    if (FleetIncidentActive(d, t) &&
        state.probe_rng.Bernoulli(spec_.incidents[d].fail_prob)) {
      return ProbeOutcome::kIncident;
    }
  }
  if (profile.IsIdeal()) {
    // Fast path: an ideal resource never consumes randomness, so attaching
    // an all-zero injector is pay-for-use.
    return ProbeOutcome::kSuccess;
  }
  if (profile.rate_limit_window > 0) {
    const Chronon window = t / profile.rate_limit_window;
    if (window != state.rate_window_index) {
      state.rate_window_index = window;
      state.rate_window_attempts = 0;
    }
    ++state.rate_window_attempts;
    if (state.rate_window_attempts > profile.rate_limit_max) {
      return ProbeOutcome::kRateLimited;
    }
  }
  if (profile.timeout_prob > 0.0 &&
      state.probe_rng.Bernoulli(profile.timeout_prob)) {
    return ProbeOutcome::kTimeout;
  }
  AdvanceChain(state, profile, t);
  if (state.in_bad_state) {
    if (state.probe_rng.Bernoulli(profile.outage_fail_prob)) {
      return ProbeOutcome::kOutage;
    }
  } else if (profile.transient_error_prob > 0.0 &&
             state.probe_rng.Bernoulli(profile.transient_error_prob)) {
    return ProbeOutcome::kTransientError;
  }
  return ProbeOutcome::kSuccess;
}

}  // namespace webmon
