// FeedServer: one simulated Web feed (RSS/Atom-style).
//
// The paper's Section II cites a feed study: 55% of Web feeds update
// hourly and ~80% keep less than 10 KB of content, so published items are
// promptly removed. FeedServer models that: a bounded FIFO buffer of
// content items; publishing beyond capacity evicts the oldest item. A
// proxy's probe (HTTP GET) returns a snapshot of the current buffer — if an
// item was evicted before any probe saw it, it is lost, which is exactly
// the volatility that makes monitoring scheduling matter.

#ifndef WEBMON_FEEDSIM_FEED_SERVER_H_
#define WEBMON_FEEDSIM_FEED_SERVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "model/types.h"

namespace webmon {

/// One published feed item.
struct FeedItem {
  /// Globally unique id (assigned by the publisher).
  uint64_t id = 0;
  /// Per-feed publication sequence number, 1-based and gap-free: the
  /// feed's n-th item carries seq == n. Consumers detect lost pushes by
  /// sequence gaps (ids are global across feeds, so id gaps mean nothing).
  uint64_t seq = 0;
  /// Publication chronon.
  Chronon published = 0;
  /// Item text (headline); content predicates match against this.
  std::string content;
};

/// A single feed with a bounded item buffer.
class FeedServer {
 public:
  /// `capacity` is the maximum number of items retained (>= 1).
  FeedServer(ResourceId resource, size_t capacity);

  /// Publishes an item at `now`, evicting the oldest if full. Returns the
  /// number of items evicted (0 or 1).
  size_t Publish(FeedItem item);

  /// Snapshot of the currently retained items, oldest first.
  std::vector<FeedItem> Fetch() const;

  /// Records a fetch attempt that failed before reaching the buffer
  /// (timeout, outage, rate limit); the caller decides the failure, the
  /// server only keeps the tally for diagnostics.
  void RecordFailedFetch() { ++total_failed_fetches_; }

  /// Items ever published / evicted (an evicted item that was never
  /// fetched is unobservable — the client's data loss).
  int64_t total_published() const { return total_published_; }
  int64_t total_evicted() const { return total_evicted_; }
  /// Fetch attempts that failed to return content.
  int64_t total_failed_fetches() const { return total_failed_fetches_; }

  ResourceId resource() const { return resource_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return buffer_.size(); }

 private:
  ResourceId resource_;
  size_t capacity_;
  std::deque<FeedItem> buffer_;
  int64_t total_published_ = 0;
  int64_t total_evicted_ = 0;
  int64_t total_failed_fetches_ = 0;
};

}  // namespace webmon

#endif  // WEBMON_FEEDSIM_FEED_SERVER_H_
