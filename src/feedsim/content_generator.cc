#include "feedsim/content_generator.h"

#include <algorithm>

#include "util/string_util.h"

namespace webmon {

namespace {

const char* const kSubjects[] = {
    "Markets", "Crude inventories", "Tech shares", "Treasury yields",
    "Housing starts", "Retail sales", "The dollar", "Commodities",
    "Earnings season", "Central banks",
};
const char* const kVerbs[] = {
    "rally", "slip", "surge", "steady", "retreat",
    "climb", "stall", "rebound", "drift", "whipsaw",
};
const char* const kContexts[] = {
    "on supply fears",       "after the report",   "ahead of the summit",
    "despite weak guidance", "as traders reprice", "in thin trading",
    "on strong demand",      "after the auction",  "amid volatility",
    "before the open",
};

constexpr size_t kChoices = 10;

}  // namespace

ContentGenerator::ContentGenerator(std::vector<std::string> keywords,
                                   double keyword_prob)
    : keywords_(std::move(keywords)),
      keyword_prob_(std::clamp(keyword_prob, 0.0, 1.0)) {}

std::string ContentGenerator::Next(Rng& rng) const {
  std::string headline = kSubjects[rng.UniformU64(kChoices)];
  headline += " ";
  headline += kVerbs[rng.UniformU64(kChoices)];
  headline += " ";
  headline += kContexts[rng.UniformU64(kChoices)];
  if (!keywords_.empty() && rng.Bernoulli(keyword_prob_)) {
    headline += " - ";
    headline += keywords_[rng.UniformU64(keywords_.size())];
    headline += " in focus";
  }
  return headline;
}

bool ContentGenerator::ContainsKeyword(const std::string& text) const {
  for (const auto& keyword : keywords_) {
    if (ContainsIgnoreCase(text, keyword)) return true;
  }
  return false;
}

}  // namespace webmon
