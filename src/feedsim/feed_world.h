// FeedWorld: a collection of simulated feed servers driven by an update
// event trace, with pull probes and optional push subscriptions.
//
// This is the "server side" of the paper's architecture: the EventTrace
// says WHEN each feed publishes, the ContentGenerator says WHAT, and the
// proxy interacts only through Probe() (HTTP GET) and push callbacks —
// exactly the pull-dominant, occasionally-push regime of Section III.

#ifndef WEBMON_FEEDSIM_FEED_WORLD_H_
#define WEBMON_FEEDSIM_FEED_WORLD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_model.h"
#include "feedsim/content_generator.h"
#include "feedsim/feed_server.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace webmon {

/// Configuration of the simulated world.
struct FeedWorldOptions {
  /// Per-feed item buffer capacity (the paper: ~80% of feeds are small, so
  /// items are promptly removed).
  size_t buffer_capacity = 5;
  /// Keywords occasionally embedded in item text.
  std::vector<std::string> keywords = {"oil"};
  /// Probability a published item mentions a keyword.
  double keyword_prob = 0.3;
  /// RNG seed for content generation.
  uint64_t seed = 1;
  /// Failure model of the fleet's network: when not ideal, Probe() can fail
  /// (Unavailable for transient errors and outages, ResourceExhausted for
  /// rate limits, DeadlineExceeded for timeouts). The ideal default keeps
  /// Probe() infallible, byte-for-byte as before.
  FaultSpec fault_spec;
  /// Seed of the fault injector's RNG streams (independent of `seed`).
  uint64_t fault_seed = 1;
  /// Probability a push notification is silently lost before reaching a
  /// subscriber (per subscription, per item). The default 0 keeps pushes
  /// infallible — and consumes no randomness, so ideal runs stay
  /// byte-identical.
  double push_loss_prob = 0.0;
  /// Push-loss probability while a fleet incident covers the feed
  /// (requires incident domains in fault_spec): the same correlated outage
  /// that fails probes also drops the push channel.
  double incident_push_loss_prob = 1.0;
};

/// The simulated server fleet.
class FeedWorld {
 public:
  /// Builds one FeedServer per trace resource. The trace is copied into the
  /// world's publication plan.
  static StatusOr<FeedWorld> Create(const EventTrace& trace,
                                    FeedWorldOptions options = {});

  /// Publishes every event with chronon <= `now` that has not yet been
  /// published, firing push callbacks for subscribed feeds. Monotonic.
  void AdvanceTo(Chronon now);

  /// A proxy probe of `feed` at chronon `now`: advances the world to `now`
  /// and returns the feed's current buffer snapshot. With a non-ideal
  /// fault_spec the fetch can fail; the world still advances (the feed
  /// published regardless — the PROBE failed, not the server), the failure
  /// is tallied on the server, and the status code maps the ProbeOutcome
  /// (Unavailable / ResourceExhausted / DeadlineExceeded).
  StatusOr<std::vector<FeedItem>> Probe(ResourceId feed, Chronon now);

  /// The world's fault injector; null under the ideal default spec.
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// Subscribes to pushes from `feed`: `callback(item)` fires for every
  /// item the feed publishes from then on (the "proprietary push
  /// technology" of Section II).
  Status Subscribe(ResourceId feed,
                   std::function<void(const FeedItem&)> callback);

  /// The underlying server (diagnostics / tests).
  StatusOr<const FeedServer*> Server(ResourceId feed) const;

  uint32_t num_feeds() const {
    return static_cast<uint32_t>(servers_.size());
  }
  Chronon now() const { return now_; }

  /// Items published so far across all feeds.
  int64_t total_published() const;
  /// Items evicted before the epoch ended (upper bound on unobservable
  /// loss; a probe may still have seen them before eviction).
  int64_t total_evicted() const;
  /// Push notifications delivered to / silently dropped before reaching
  /// subscribers (per subscription; one item to two subscribers counts
  /// twice).
  int64_t total_pushes_delivered() const { return total_pushes_delivered_; }
  int64_t total_pushes_lost() const { return total_pushes_lost_; }

 private:
  FeedWorld(FeedWorldOptions options);

  struct PlannedEvent {
    Chronon chronon;
    ResourceId feed;
  };
  struct Subscription {
    std::function<void(const FeedItem&)> callback;
    // Loss stream, independent per subscription so adding a subscriber
    // never perturbs another's losses. Only drawn from while the effective
    // loss probability is positive.
    Rng loss_rng;
  };

  FeedWorldOptions options_;
  ContentGenerator content_;
  Rng rng_;
  // Pay-for-use: allocated only for a non-ideal fault_spec.
  std::unique_ptr<FaultInjector> fault_injector_;
  std::vector<FeedServer> servers_;
  std::vector<PlannedEvent> plan_;  // sorted by chronon
  size_t next_event_ = 0;
  Chronon now_ = -1;
  uint64_t next_item_id_ = 0;
  uint64_t next_subscription_ = 0;
  int64_t total_pushes_delivered_ = 0;
  int64_t total_pushes_lost_ = 0;
  std::vector<std::vector<Subscription>> subscribers_;
};

}  // namespace webmon

#endif  // WEBMON_FEEDSIM_FEED_WORLD_H_
