// ContentGenerator: synthesizes feed item text with controllable keyword
// occurrences, so content predicates (the paper's `F1 CONTAINS %oil%`) have
// something real to match against.

#ifndef WEBMON_FEEDSIM_CONTENT_GENERATOR_H_
#define WEBMON_FEEDSIM_CONTENT_GENERATOR_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace webmon {

/// Generates headline-like strings; with probability `keyword_prob` a
/// headline contains one of the configured keywords.
class ContentGenerator {
 public:
  /// `keywords` may be empty (no keyword ever injected). `keyword_prob`
  /// is clamped to [0, 1].
  ContentGenerator(std::vector<std::string> keywords, double keyword_prob);

  /// Produces the next headline using `rng`.
  std::string Next(Rng& rng) const;

  /// True iff `text` contains any configured keyword (case-insensitive) —
  /// convenience for tests and engines.
  bool ContainsKeyword(const std::string& text) const;

 private:
  std::vector<std::string> keywords_;
  double keyword_prob_;
};

}  // namespace webmon

#endif  // WEBMON_FEEDSIM_CONTENT_GENERATOR_H_
