#include "feedsim/feed_world.h"

#include <algorithm>

namespace webmon {

FeedWorld::FeedWorld(FeedWorldOptions options)
    : options_(options),
      content_(options.keywords, options.keyword_prob),
      rng_(options.seed) {}

StatusOr<FeedWorld> FeedWorld::Create(const EventTrace& trace,
                                      FeedWorldOptions options) {
  if (options.buffer_capacity == 0) {
    return Status::InvalidArgument("feed buffers need capacity >= 1");
  }
  if (options.push_loss_prob < 0.0 || options.push_loss_prob > 1.0 ||
      options.incident_push_loss_prob < 0.0 ||
      options.incident_push_loss_prob > 1.0) {
    return Status::InvalidArgument(
        "push loss probabilities must be in [0, 1]");
  }
  WEBMON_RETURN_IF_ERROR(options.fault_spec.Validate());
  FeedWorld world(options);
  if (!options.fault_spec.IsIdeal()) {
    world.fault_injector_ = std::make_unique<FaultInjector>(
        options.fault_spec, trace.num_resources(), options.fault_seed);
  }
  world.servers_.reserve(trace.num_resources());
  for (ResourceId r = 0; r < trace.num_resources(); ++r) {
    world.servers_.emplace_back(r, options.buffer_capacity);
    for (Chronon t : trace.EventsOf(r)) {
      world.plan_.push_back({t, r});
    }
  }
  // total-order: (chronon, feed) is unique per planned event — EventsOf
  // yields each feed's chronons deduplicated.
  std::sort(world.plan_.begin(), world.plan_.end(),
            [](const PlannedEvent& a, const PlannedEvent& b) {
              if (a.chronon != b.chronon) return a.chronon < b.chronon;
              return a.feed < b.feed;
            });
  world.subscribers_.resize(trace.num_resources());
  return world;
}

void FeedWorld::AdvanceTo(Chronon now) {
  if (now <= now_) return;
  while (next_event_ < plan_.size() && plan_[next_event_].chronon <= now) {
    const PlannedEvent& event = plan_[next_event_++];
    FeedItem item;
    item.id = next_item_id_++;
    // Per-feed sequence number: the n-th item of a feed carries seq == n,
    // so subscribers can spot lost pushes as gaps.
    item.seq =
        static_cast<uint64_t>(servers_[event.feed].total_published()) + 1;
    item.published = event.chronon;
    item.content = content_.Next(rng_);
    servers_[event.feed].Publish(item);
    if (!subscribers_[event.feed].empty()) {
      // The push channel rides the same network as the probes: while a
      // fleet incident covers the feed, losses jump to the incident rate.
      double loss = options_.push_loss_prob;
      if (fault_injector_ != nullptr &&
          options_.incident_push_loss_prob > loss &&
          fault_injector_->ResourceInIncident(event.feed, event.chronon)) {
        loss = options_.incident_push_loss_prob;
      }
      for (auto& sub : subscribers_[event.feed]) {
        // Draw only under a positive loss probability: the infallible
        // default consumes no randomness, keeping legacy runs
        // byte-identical.
        if (loss > 0.0 && sub.loss_rng.Bernoulli(loss)) {
          ++total_pushes_lost_;
          continue;
        }
        ++total_pushes_delivered_;
        sub.callback(item);
      }
    }
  }
  now_ = now;
}

StatusOr<std::vector<FeedItem>> FeedWorld::Probe(ResourceId feed,
                                                 Chronon now) {
  if (feed >= servers_.size()) {
    return Status::OutOfRange("probed feed does not exist");
  }
  if (now < now_) {
    return Status::FailedPrecondition("cannot probe the past");
  }
  // The world advances even when the fetch fails: the feeds published
  // regardless — it is the probe that got lost on the wire.
  AdvanceTo(now);
  if (fault_injector_ != nullptr) {
    const ProbeOutcome outcome = fault_injector_->OnProbe(feed, now);
    if (!ProbeSucceeded(outcome)) {
      servers_[feed].RecordFailedFetch();
      const std::string detail = std::string("probe of feed failed: ") +
                                 ProbeOutcomeToString(outcome);
      switch (outcome) {
        case ProbeOutcome::kRateLimited:
          return Status::ResourceExhausted(detail);
        case ProbeOutcome::kTimeout:
          return Status::DeadlineExceeded(detail);
        default:
          return Status::Unavailable(detail);
      }
    }
  }
  return servers_[feed].Fetch();
}

Status FeedWorld::Subscribe(ResourceId feed,
                            std::function<void(const FeedItem&)> callback) {
  if (feed >= servers_.size()) {
    return Status::OutOfRange("subscribed feed does not exist");
  }
  Subscription sub;
  sub.callback = std::move(callback);
  // Independent per-subscription loss stream, keyed by registration index
  // with a constant distinct from the injector's per-resource and
  // per-domain streams.
  sub.loss_rng = Rng(options_.fault_seed ^
                     (0xD6E8FEB86659FD93ULL * (next_subscription_ + 1)));
  ++next_subscription_;
  subscribers_[feed].push_back(std::move(sub));
  return Status::OK();
}

StatusOr<const FeedServer*> FeedWorld::Server(ResourceId feed) const {
  if (feed >= servers_.size()) {
    return Status::OutOfRange("feed does not exist");
  }
  return &servers_[feed];
}

int64_t FeedWorld::total_published() const {
  int64_t total = 0;
  for (const auto& server : servers_) total += server.total_published();
  return total;
}

int64_t FeedWorld::total_evicted() const {
  int64_t total = 0;
  for (const auto& server : servers_) total += server.total_evicted();
  return total;
}

}  // namespace webmon
