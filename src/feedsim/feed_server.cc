#include "feedsim/feed_server.h"

#include <algorithm>

namespace webmon {

FeedServer::FeedServer(ResourceId resource, size_t capacity)
    : resource_(resource), capacity_(std::max<size_t>(capacity, 1)) {}

size_t FeedServer::Publish(FeedItem item) {
  ++total_published_;
  size_t evicted = 0;
  if (buffer_.size() >= capacity_) {
    buffer_.pop_front();
    ++total_evicted_;
    evicted = 1;
  }
  buffer_.push_back(std::move(item));
  return evicted;
}

std::vector<FeedItem> FeedServer::Fetch() const {
  return std::vector<FeedItem>(buffer_.begin(), buffer_.end());
}

}  // namespace webmon
