// Client profile: a collection of CEIs stored at the proxy
// (paper Section III-A).

#ifndef WEBMON_MODEL_PROFILE_H_
#define WEBMON_MODEL_PROFILE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "model/cei.h"
#include "model/types.h"

namespace webmon {

/// A client profile. CEIs are stored by value; ids inside them must be
/// globally unique within the owning ProblemInstance.
struct Profile {
  ProfileId id = 0;
  std::vector<Cei> ceis;

  /// |p|: the number of CEIs (denominator of Eq. 1 per profile).
  size_t Size() const { return ceis.size(); }

  /// rank(p) = max_{eta in p} |eta|; 0 for an empty profile.
  size_t Rank() const;

  /// "Profile{id, |ceis| CEIs, rank=..}" for diagnostics.
  std::string ToString() const;
};

/// rank(P) = max_{p in P} rank(p); 0 for an empty set.
size_t RankOf(const std::vector<Profile>& profiles);

}  // namespace webmon

#endif  // WEBMON_MODEL_PROFILE_H_
