// Capture-delay (timeliness) metrics.
//
// The paper's Problem 1 maximizes completeness only, but the WIC baseline
// it compares against was designed to balance completeness WITH timeliness.
// These metrics expose that second dimension: how long after an execution
// interval opens (or after the true update happens) was the capturing probe
// issued? Lower is fresher data for the client.

#ifndef WEBMON_MODEL_TIMELINESS_H_
#define WEBMON_MODEL_TIMELINESS_H_

#include "model/problem.h"
#include "model/schedule.h"
#include "util/stats.h"

namespace webmon {

/// Delay statistics of a schedule against an instance.
struct TimelinessReport {
  /// Over captured EIs: first capturing probe's chronon minus the EI start.
  RunningStats ei_capture_delay;
  /// Over captured CEIs: the chronon the CEI completed (its last needed EI
  /// was captured) minus the CEI's earliest EI start.
  RunningStats cei_completion_delay;
  /// Fraction of captured EIs caught at their first possible chronon.
  double immediate_fraction = 0.0;
};

/// Computes delays for every captured EI / CEI in `problem` under
/// `schedule`.
TimelinessReport ComputeTimeliness(const ProblemInstance& problem,
                                   const Schedule& schedule);

/// First chronon in [ei.start, ei.finish] at which `schedule` probes the
/// EI's resource; kInvalidChronon if never.
Chronon FirstCaptureChronon(const ExecutionInterval& ei,
                            const Schedule& schedule);

}  // namespace webmon

#endif  // WEBMON_MODEL_TIMELINESS_H_
