#include "model/profile.h"

#include <algorithm>
#include <sstream>

namespace webmon {

size_t Profile::Rank() const {
  size_t rank = 0;
  for (const auto& cei : ceis) rank = std::max(rank, cei.Rank());
  return rank;
}

std::string Profile::ToString() const {
  std::ostringstream os;
  os << "Profile{" << id << ", " << ceis.size() << " CEIs, rank=" << Rank()
     << "}";
  return os.str();
}

size_t RankOf(const std::vector<Profile>& profiles) {
  size_t rank = 0;
  for (const auto& p : profiles) rank = std::max(rank, p.Rank());
  return rank;
}

}  // namespace webmon
