// Probe outcome taxonomy and the proxy's failure-handling contract.
//
// The paper's model assumes every probe the proxy issues succeeds; the feed
// study it builds on (Section II: volatile, bounded-buffer feeds) describes
// exactly the environment where real HTTP probes time out, get rate-limited,
// or hit transient outages. This header is the shared vocabulary between the
// three layers that deal with that reality:
//   * the fault injector (src/faults) decides what happens to an attempt,
//   * the online scheduler reacts (retry/backoff, circuit breaker),
//   * the schedule auditor re-derives and verifies the reaction.
// It lives in model/ because the failure-handling parameters are part of the
// externally observable scheduling contract, just like budgets and windows.

#ifndef WEBMON_MODEL_PROBE_OUTCOME_H_
#define WEBMON_MODEL_PROBE_OUTCOME_H_

#include <cstdint>

#include "model/types.h"

namespace webmon {

/// What happened to one issued probe. Everything except kSuccess spends the
/// probe's budget without delivering content (the capture guarantee of a CEI
/// holds only for successful probes).
enum class ProbeOutcome : uint8_t {
  kSuccess = 0,
  /// Independent per-attempt failure (connection reset, 5xx, ...).
  kTransientError = 1,
  /// Failure while the resource is in the bad state of its Gilbert-Elliott
  /// chain (a burst outage).
  kOutage = 2,
  /// The resource's fixed-window rate limiter rejected the attempt (429).
  kRateLimited = 3,
  /// Probe latency exceeded the chronon; the reply arrives too late to
  /// count (the chronon is the indivisible scheduling unit).
  kTimeout = 4,
  /// Failure while a fleet-level incident domain covering the resource is
  /// in its bad state (a correlated outage: CDN, ISP, data center).
  kIncident = 5,
};

/// Canonical spelling of `outcome` (e.g. "success", "rate-limited").
inline const char* ProbeOutcomeToString(ProbeOutcome outcome) {
  switch (outcome) {
    case ProbeOutcome::kSuccess:
      return "success";
    case ProbeOutcome::kTransientError:
      return "transient-error";
    case ProbeOutcome::kOutage:
      return "outage";
    case ProbeOutcome::kRateLimited:
      return "rate-limited";
    case ProbeOutcome::kTimeout:
      return "timeout";
    case ProbeOutcome::kIncident:
      return "incident";
  }
  return "unknown";
}

inline bool ProbeSucceeded(ProbeOutcome outcome) {
  return outcome == ProbeOutcome::kSuccess;
}

/// One issued probe attempt with its outcome. The scheduler logs these when
/// a fault injector is attached; the auditor replays the log to verify the
/// failure-handling invariants.
struct ProbeAttempt {
  /// Bit flags of `incident`: the scheduler's detector believed a covering
  /// incident domain was open when the attempt was issued (so the attempt
  /// is a fleet-breaker trial), and the injector's ground truth — a
  /// covering domain actually was in its bad state. Both stay 0 on specs
  /// without incident domains, keeping old logs bit-identical.
  static constexpr uint8_t kDetectorOpen = 1;
  static constexpr uint8_t kFleetIncident = 2;

  ResourceId resource = 0;
  Chronon chronon = 0;
  ProbeOutcome outcome = ProbeOutcome::kSuccess;
  uint8_t incident = 0;

  friend bool operator==(const ProbeAttempt& a, const ProbeAttempt& b) {
    return a.resource == b.resource && a.chronon == b.chronon &&
           a.outcome == b.outcome && a.incident == b.incident;
  }
};

/// Parameters of the scheduler's reaction to probe failures. The auditor
/// receives the same struct and enforces the derived invariants:
///   * after the k-th consecutive failure of a resource, the next attempt
///     waits at least min(backoff_base * 2^(k-1), backoff_cap) chronons
///     (jitter only ever adds delay, so the pure bound is auditable);
///   * after breaker_failure_threshold consecutive failures the breaker
///     opens and no attempt may be issued until the cooldown elapsed; the
///     first attempt after that is the half-open trial, and a failed trial
///     re-opens with the cooldown doubled up to breaker_max_cooldown.
struct FaultHandlingOptions {
  /// Backoff after the first failure, in chronons (>= 1).
  Chronon backoff_base = 1;
  /// Cap of the pure exponential backoff, in chronons.
  Chronon backoff_cap = 8;
  /// Add a deterministic jitter in [0, backoff/2] derived from
  /// (jitter_seed, resource, streak, chronon); avoids synchronized retry
  /// herds across resources while keeping runs reproducible.
  bool backoff_jitter = true;
  uint64_t jitter_seed = 0x5EEDFA11;
  /// Consecutive failures that trip the per-resource circuit breaker;
  /// <= 0 disables the breaker.
  int32_t breaker_failure_threshold = 4;
  /// First open period after a trip, in chronons (>= 1).
  Chronon breaker_cooldown = 8;
  /// Cooldown doubles on every failed half-open trial, up to this cap.
  Chronon breaker_max_cooldown = 64;
  /// Degradation-aware urgency: deadlines of EIs on flaky resources are
  /// shrunk by up to this many chronons (expected extra attempts per
  /// success, f/(1-f) under the observed failure rate f), so deadline-based
  /// policies treat them as more urgent. 0 disables the adjustment.
  Chronon deadline_shrink_cap = 8;
  /// Smoothing factor of the per-resource failure-rate estimate.
  double failure_ewma_alpha = 0.2;

  // --- Fleet incident detector (docs/ROBUSTNESS.md). Consulted only when
  // the attached injector's spec names incident domains; the detector sees
  // probe outcomes alone, never the injector's chain state (no oracle).
  /// Master switch: false runs incident-oblivious (the ablation baseline).
  bool incident_detection = true;
  /// Trailing window (chronons) of the per-domain failure-rate estimate.
  Chronon incident_window = 16;
  /// Minimum attempts inside the window before the estimate is trusted.
  int32_t incident_min_attempts = 6;
  /// Windowed failure rate at which the fleet breaker opens.
  double incident_open_threshold = 0.7;
  /// While open, one covered resource is re-probed every this many
  /// chronons (the end-of-incident trial).
  Chronon incident_reprobe_interval = 4;
  /// Consecutive successful trials that close the fleet breaker.
  int32_t incident_close_successes = 2;
};

}  // namespace webmon

#endif  // WEBMON_MODEL_PROBE_OUTCOME_H_
