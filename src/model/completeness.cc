#include "model/completeness.h"

#include "util/check.h"

namespace webmon {

namespace {

// Capture evaluation only makes sense for a schedule over the same world;
// a dimension mismatch means the caller paired a schedule with the wrong
// instance (CEI well-formedness contract).
void DcheckSameWorld(const ProblemInstance& problem,
                     const Schedule& schedule) {
  WEBMON_DCHECK_EQ(problem.num_resources(), schedule.num_resources());
  WEBMON_DCHECK_EQ(problem.num_chronons(), schedule.num_chronons());
}

}  // namespace

bool EiCaptured(const ExecutionInterval& ei, const Schedule& schedule) {
  return schedule.ProbedInRange(ei.resource, ei.start, ei.finish);
}

bool CeiCaptured(const Cei& cei, const Schedule& schedule) {
  if (cei.eis.empty()) return false;
  const size_t needed = cei.RequiredCaptures();
  size_t captured = 0;
  size_t remaining = cei.eis.size();
  for (const auto& ei : cei.eis) {
    if (EiCaptured(ei, schedule)) {
      if (++captured >= needed) return true;
    }
    --remaining;
    if (captured + remaining < needed) return false;  // cannot reach
  }
  return captured >= needed;
}

int64_t CapturedCeiCount(const ProblemInstance& problem,
                         const Schedule& schedule) {
  DcheckSameWorld(problem, schedule);
  int64_t captured = 0;
  for (const auto& profile : problem.profiles()) {
    for (const auto& cei : profile.ceis) {
      if (CeiCaptured(cei, schedule)) ++captured;
    }
  }
  return captured;
}

int64_t CapturedEiCount(const ProblemInstance& problem,
                        const Schedule& schedule) {
  DcheckSameWorld(problem, schedule);
  int64_t captured = 0;
  for (const auto& profile : problem.profiles()) {
    for (const auto& cei : profile.ceis) {
      for (const auto& ei : cei.eis) {
        if (EiCaptured(ei, schedule)) ++captured;
      }
    }
  }
  return captured;
}

double GainedCompleteness(const ProblemInstance& problem,
                          const Schedule& schedule) {
  const int64_t total = problem.TotalCeis();
  if (total == 0) return 0.0;
  return static_cast<double>(CapturedCeiCount(problem, schedule)) /
         static_cast<double>(total);
}

double EiCompleteness(const ProblemInstance& problem,
                      const Schedule& schedule) {
  const int64_t total = problem.TotalEis();
  if (total == 0) return 0.0;
  return static_cast<double>(CapturedEiCount(problem, schedule)) /
         static_cast<double>(total);
}

double WeightedCompleteness(const ProblemInstance& problem,
                            const Schedule& schedule) {
  DcheckSameWorld(problem, schedule);
  double total = 0.0;
  double captured = 0.0;
  for (const auto& profile : problem.profiles()) {
    for (const auto& cei : profile.ceis) {
      total += cei.weight;
      if (CeiCaptured(cei, schedule)) captured += cei.weight;
    }
  }
  if (total == 0.0) return 0.0;
  return captured / total;
}

}  // namespace webmon
