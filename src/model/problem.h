// ProblemInstance: a full instance of the Complex Monitoring problem
// (paper Problem 1) — resources, epoch, budget, and client profiles.

#ifndef WEBMON_MODEL_PROBLEM_H_
#define WEBMON_MODEL_PROBLEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/profile.h"
#include "model/schedule.h"
#include "model/types.h"
#include "util/status.h"

namespace webmon {

/// An immutable-after-validation instance of Problem 1.
class ProblemInstance {
 public:
  /// Constructs an empty instance; populate via ProblemBuilder (preferred) or
  /// by setting fields directly and calling Validate().
  ProblemInstance(uint32_t num_resources, Chronon num_chronons,
                  BudgetVector budget);

  uint32_t num_resources() const { return num_resources_; }
  Chronon num_chronons() const { return num_chronons_; }
  const BudgetVector& budget() const { return budget_; }
  const std::vector<Profile>& profiles() const { return profiles_; }
  std::vector<Profile>& mutable_profiles() { return profiles_; }

  /// rank(P) over all profiles.
  size_t Rank() const { return RankOf(profiles_); }

  /// Total number of CEIs across all profiles (denominator of Eq. 1).
  int64_t TotalCeis() const;

  /// Total number of EIs across all CEIs.
  int64_t TotalEis() const;

  /// Pointers to every CEI across all profiles, in (profile, cei) order.
  /// Valid until profiles are mutated.
  std::vector<const Cei*> AllCeis() const;

  /// True iff no CEI has two overlapping EIs on the same resource.
  bool HasIntraResourceOverlap() const;

  /// True iff every EI of every CEI has width 1 (the P^[1] class).
  bool IsUnitWidth() const;

  /// Checks structural invariants: resources and chronons in range,
  /// non-empty CEIs, start <= finish, arrival <= earliest EI finish (the
  /// proxy must learn of a CEI while it can still act on every EI), and
  /// globally unique CEI/EI ids.
  Status Validate() const;

  /// One-line summary for experiment logs.
  std::string Summary() const;

 private:
  uint32_t num_resources_;
  Chronon num_chronons_;
  BudgetVector budget_;
  std::vector<Profile> profiles_;
};

/// Incrementally builds a valid ProblemInstance, assigning globally unique
/// profile / CEI / EI ids and defaulting CEI arrivals to the earliest EI
/// start.
class ProblemBuilder {
 public:
  ProblemBuilder(uint32_t num_resources, Chronon num_chronons,
                 BudgetVector budget);

  /// Starts a new profile; subsequent AddCei calls attach to it.
  /// Returns the profile id.
  ProfileId BeginProfile();

  /// Adds a CEI with the given EIs (resource, start, finish triples) to the
  /// current profile. `arrival` < 0 means "default to earliest EI start".
  /// `weight` is the client utility of capturing the CEI; `required` = 0
  /// keeps AND semantics, otherwise the CEI is satisfied by capturing any
  /// `required` of its EIs. Returns the assigned CEI id or an error for
  /// malformed input.
  StatusOr<CeiId> AddCei(
      const std::vector<std::tuple<ResourceId, Chronon, Chronon>>& eis,
      Chronon arrival = -1, double weight = 1.0, uint32_t required = 0);

  /// Finalizes and validates the instance.
  StatusOr<ProblemInstance> Build();

 private:
  ProblemInstance instance_;
  bool has_profile_ = false;
  CeiId next_cei_id_ = 0;
  EiId next_ei_id_ = 0;
};

}  // namespace webmon

#endif  // WEBMON_MODEL_PROBLEM_H_
