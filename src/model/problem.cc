#include "model/problem.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <unordered_set>

namespace webmon {

ProblemInstance::ProblemInstance(uint32_t num_resources, Chronon num_chronons,
                                 BudgetVector budget)
    : num_resources_(num_resources),
      num_chronons_(num_chronons),
      budget_(std::move(budget)) {}

int64_t ProblemInstance::TotalCeis() const {
  int64_t total = 0;
  for (const auto& p : profiles_) total += static_cast<int64_t>(p.ceis.size());
  return total;
}

int64_t ProblemInstance::TotalEis() const {
  int64_t total = 0;
  for (const auto& p : profiles_) {
    for (const auto& cei : p.ceis) total += static_cast<int64_t>(cei.eis.size());
  }
  return total;
}

std::vector<const Cei*> ProblemInstance::AllCeis() const {
  std::vector<const Cei*> out;
  out.reserve(static_cast<size_t>(TotalCeis()));
  for (const auto& p : profiles_) {
    for (const auto& cei : p.ceis) out.push_back(&cei);
  }
  return out;
}

bool ProblemInstance::HasIntraResourceOverlap() const {
  for (const auto& p : profiles_) {
    for (const auto& cei : p.ceis) {
      if (cei.HasIntraResourceOverlap()) return true;
    }
  }
  return false;
}

bool ProblemInstance::IsUnitWidth() const {
  for (const auto& p : profiles_) {
    for (const auto& cei : p.ceis) {
      if (!cei.IsUnitWidth()) return false;
    }
  }
  return true;
}

Status ProblemInstance::Validate() const {
  if (num_chronons_ <= 0) {
    return Status::InvalidArgument("epoch must contain at least one chronon");
  }
  std::unordered_set<CeiId> cei_ids;
  std::unordered_set<EiId> ei_ids;
  for (size_t pi = 0; pi < profiles_.size(); ++pi) {
    const Profile& p = profiles_[pi];
    if (p.id != static_cast<ProfileId>(pi)) {
      return Status::Internal("profile id does not match its position");
    }
    for (const Cei& cei : p.ceis) {
      if (cei.eis.empty()) {
        return Status::InvalidArgument("CEI " + std::to_string(cei.id) +
                                       " has no execution intervals");
      }
      if (!cei_ids.insert(cei.id).second) {
        return Status::InvalidArgument("duplicate CEI id " +
                                       std::to_string(cei.id));
      }
      if (cei.profile != p.id) {
        return Status::InvalidArgument("CEI " + std::to_string(cei.id) +
                                       " profile backlink mismatch");
      }
      if (cei.weight <= 0.0) {
        return Status::InvalidArgument("CEI " + std::to_string(cei.id) +
                                       " has non-positive weight");
      }
      if (cei.required > cei.eis.size()) {
        return Status::InvalidArgument(
            "CEI " + std::to_string(cei.id) +
            " requires more captures than it has EIs");
      }
      for (const ExecutionInterval& ei : cei.eis) {
        if (!ei_ids.insert(ei.id).second) {
          return Status::InvalidArgument("duplicate EI id " +
                                         std::to_string(ei.id));
        }
        if (ei.resource >= num_resources_) {
          return Status::OutOfRange("EI " + std::to_string(ei.id) +
                                    " resource out of range");
        }
        if (ei.start > ei.finish) {
          return Status::InvalidArgument("EI " + std::to_string(ei.id) +
                                         " has start > finish");
        }
        if (ei.start < 0 || ei.finish >= num_chronons_) {
          return Status::OutOfRange("EI " + std::to_string(ei.id) +
                                    " outside the epoch");
        }
      }
      if (cei.arrival < 0 || cei.arrival >= num_chronons_) {
        return Status::OutOfRange("CEI " + std::to_string(cei.id) +
                                  " arrival outside the epoch");
      }
      // The CEI must still be satisfiable when the proxy learns of it:
      // enough EIs must have windows that have not fully passed by arrival.
      size_t failed_at_arrival = 0;
      for (const ExecutionInterval& ei : cei.eis) {
        if (ei.finish < cei.arrival) ++failed_at_arrival;
      }
      if (cei.eis.size() - failed_at_arrival < cei.RequiredCaptures()) {
        return Status::InvalidArgument(
            "CEI " + std::to_string(cei.id) +
            " arrives after too many of its EIs have already expired");
      }
    }
  }
  return Status::OK();
}

std::string ProblemInstance::Summary() const {
  std::ostringstream os;
  os << "ProblemInstance{n=" << num_resources_ << " K=" << num_chronons_
     << " profiles=" << profiles_.size() << " CEIs=" << TotalCeis()
     << " EIs=" << TotalEis() << " rank=" << Rank() << "}";
  return os.str();
}

ProblemBuilder::ProblemBuilder(uint32_t num_resources, Chronon num_chronons,
                               BudgetVector budget)
    : instance_(num_resources, num_chronons, std::move(budget)) {}

ProfileId ProblemBuilder::BeginProfile() {
  Profile p;
  p.id = static_cast<ProfileId>(instance_.mutable_profiles().size());
  instance_.mutable_profiles().push_back(std::move(p));
  has_profile_ = true;
  return instance_.profiles().back().id;
}

StatusOr<CeiId> ProblemBuilder::AddCei(
    const std::vector<std::tuple<ResourceId, Chronon, Chronon>>& eis,
    Chronon arrival, double weight, uint32_t required) {
  if (!has_profile_) {
    return Status::FailedPrecondition("AddCei before BeginProfile");
  }
  if (eis.empty()) {
    return Status::InvalidArgument("CEI needs at least one EI");
  }
  Cei cei;
  cei.id = next_cei_id_++;
  cei.profile = instance_.profiles().back().id;
  cei.weight = weight;
  cei.required = required;
  Chronon earliest = std::get<1>(eis.front());
  for (const auto& [resource, start, finish] : eis) {
    ExecutionInterval ei;
    ei.id = next_ei_id_++;
    ei.resource = resource;
    ei.start = start;
    ei.finish = finish;
    cei.eis.push_back(ei);
    earliest = std::min(earliest, start);
  }
  cei.arrival = (arrival < 0) ? earliest : arrival;
  instance_.mutable_profiles().back().ceis.push_back(std::move(cei));
  return instance_.profiles().back().ceis.back().id;
}

StatusOr<ProblemInstance> ProblemBuilder::Build() {
  WEBMON_RETURN_IF_ERROR(instance_.Validate());
  return std::move(instance_);
}

}  // namespace webmon
