#include "model/serialize.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace webmon {

std::string ProblemToText(const ProblemInstance& problem) {
  std::ostringstream os;
  os << "webmon-problem 1\n";
  os << "resources " << problem.num_resources() << "\n";
  os << "chronons " << problem.num_chronons() << "\n";
  const BudgetVector& budget = problem.budget();
  if (budget.is_uniform()) {
    os << "budget uniform " << budget.uniform_value() << "\n";
  } else {
    os << "budget perchronon";
    for (Chronon t = 0; t < problem.num_chronons(); ++t) {
      os << " " << budget.At(t);
    }
    os << "\n";
  }
  for (const auto& profile : problem.profiles()) {
    os << "profile\n";
    for (const auto& cei : profile.ceis) {
      os << "cei " << cei.arrival << " " << cei.weight << " " << cei.required
         << "\n";
      for (const auto& ei : cei.eis) {
        os << "ei " << ei.resource << " " << ei.start << " " << ei.finish
           << "\n";
      }
    }
  }
  return os.str();
}

StatusOr<ProblemInstance> ProblemFromText(const std::string& text) {
  std::istringstream is(text);
  std::string line;

  auto next_line = [&](std::string* out) {
    while (std::getline(is, line)) {
      const std::string_view stripped = StripWhitespace(line);
      if (stripped.empty() || stripped[0] == '#') continue;
      *out = std::string(stripped);
      return true;
    }
    return false;
  };

  std::string current;
  if (!next_line(&current) || current != "webmon-problem 1") {
    return Status::InvalidArgument("missing or unsupported problem header");
  }

  auto expect_field = [&](const std::string& key,
                          int64_t* value) -> Status {
    std::string row;
    if (!next_line(&row)) {
      return Status::InvalidArgument("unexpected end of input, wanted " + key);
    }
    std::istringstream ls(row);
    std::string name;
    if (!(ls >> name >> *value) || name != key) {
      return Status::InvalidArgument("malformed '" + key + "' line: " + row);
    }
    return Status::OK();
  };

  int64_t num_resources = 0;
  int64_t num_chronons = 0;
  WEBMON_RETURN_IF_ERROR(expect_field("resources", &num_resources));
  WEBMON_RETURN_IF_ERROR(expect_field("chronons", &num_chronons));
  if (num_resources < 0 || num_chronons <= 0) {
    return Status::InvalidArgument("non-positive dimensions");
  }

  std::string budget_line;
  if (!next_line(&budget_line)) {
    return Status::InvalidArgument("missing budget line");
  }
  std::istringstream bs(budget_line);
  std::string keyword;
  std::string mode;
  if (!(bs >> keyword >> mode) || keyword != "budget") {
    return Status::InvalidArgument("malformed budget line: " + budget_line);
  }
  BudgetVector budget = BudgetVector::Uniform(0);
  if (mode == "uniform") {
    int64_t c = 0;
    if (!(bs >> c)) {
      return Status::InvalidArgument("malformed uniform budget");
    }
    budget = BudgetVector::Uniform(c);
  } else if (mode == "perchronon") {
    std::vector<int64_t> values;
    int64_t c = 0;
    while (bs >> c) values.push_back(c);
    if (static_cast<int64_t>(values.size()) != num_chronons) {
      return Status::InvalidArgument(
          "perchronon budget must list one value per chronon");
    }
    budget = BudgetVector::PerChronon(std::move(values));
  } else {
    return Status::InvalidArgument("unknown budget mode: " + mode);
  }

  ProblemBuilder builder(static_cast<uint32_t>(num_resources), num_chronons,
                         std::move(budget));
  bool in_profile = false;
  // Pending CEI attributes and EIs, flushed when the next cei/profile
  // starts or input ends.
  bool has_pending = false;
  Chronon pending_arrival = -1;
  double pending_weight = 1.0;
  uint32_t pending_required = 0;
  std::vector<std::tuple<ResourceId, Chronon, Chronon>> pending_eis;

  auto flush = [&]() -> Status {
    if (!has_pending) return Status::OK();
    if (pending_eis.empty()) {
      return Status::InvalidArgument("cei with no ei lines");
    }
    WEBMON_RETURN_IF_ERROR(builder
                               .AddCei(pending_eis, pending_arrival,
                                       pending_weight, pending_required)
                               .status());
    pending_eis.clear();
    has_pending = false;
    return Status::OK();
  };

  while (next_line(&current)) {
    std::istringstream ls(current);
    std::string tag;
    ls >> tag;
    if (tag == "profile") {
      WEBMON_RETURN_IF_ERROR(flush());
      builder.BeginProfile();
      in_profile = true;
    } else if (tag == "cei") {
      if (!in_profile) {
        return Status::InvalidArgument("cei outside a profile");
      }
      WEBMON_RETURN_IF_ERROR(flush());
      if (!(ls >> pending_arrival >> pending_weight >> pending_required)) {
        return Status::InvalidArgument("malformed cei line: " + current);
      }
      has_pending = true;
    } else if (tag == "ei") {
      if (!has_pending) {
        return Status::InvalidArgument("ei outside a cei");
      }
      int64_t resource = 0;
      Chronon start = 0;
      Chronon finish = 0;
      if (!(ls >> resource >> start >> finish) || resource < 0) {
        return Status::InvalidArgument("malformed ei line: " + current);
      }
      pending_eis.emplace_back(static_cast<ResourceId>(resource), start,
                               finish);
    } else {
      return Status::InvalidArgument("unknown line: " + current);
    }
  }
  WEBMON_RETURN_IF_ERROR(flush());
  return builder.Build();
}

Status SaveProblemToFile(const ProblemInstance& problem,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << ProblemToText(problem);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<ProblemInstance> LoadProblemFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ProblemFromText(buf.str());
}

}  // namespace webmon
