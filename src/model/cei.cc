#include "model/cei.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace webmon {

Chronon Cei::EarliestStart() const {
  if (eis.empty()) return kInvalidChronon;
  Chronon best = eis.front().start;
  for (const auto& ei : eis) best = std::min(best, ei.start);
  return best;
}

Chronon Cei::LatestFinish() const {
  if (eis.empty()) return kInvalidChronon;
  Chronon best = eis.front().finish;
  for (const auto& ei : eis) best = std::max(best, ei.finish);
  return best;
}

Chronon Cei::TotalChronons() const {
  Chronon total = 0;
  for (const auto& ei : eis) {
    // Interval ordering: a well-formed EI has start <= finish, so every
    // term is positive and the sum cannot wrap.
    WEBMON_DCHECK_LE(ei.start, ei.finish) << "malformed EI " << ei.ToString();
    total += ei.Length();
  }
  return total;
}

bool Cei::HasIntraResourceOverlap() const {
  for (size_t i = 0; i < eis.size(); ++i) {
    for (size_t j = i + 1; j < eis.size(); ++j) {
      if (eis[i].resource == eis[j].resource && eis[i].Overlaps(eis[j])) {
        return true;
      }
    }
  }
  return false;
}

bool Cei::IsUnitWidth() const {
  return std::all_of(eis.begin(), eis.end(),
                     [](const ExecutionInterval& ei) {
                       return ei.Length() == 1;
                     });
}

std::string Cei::ToString() const {
  std::ostringstream os;
  os << "CEI{" << id << " p=" << profile << " arrival=" << arrival << " "
     << eis.size() << " EIs}";
  return os.str();
}

}  // namespace webmon
