#include "model/schedule_audit.h"

#include <algorithm>
#include <sstream>

#include "model/completeness.h"
#include "util/check.h"

namespace webmon {

namespace {

Status AuditFailure(const std::string& invariant, const std::string& detail) {
  return Status::FailedPrecondition("schedule audit: " + invariant + ": " +
                                    detail);
}

// Marks, per resource, the chronons covered by at least one EI window, so
// the probes-target-live-EIs scan is O(probes * log windows).
class WindowIndex {
 public:
  explicit WindowIndex(const ProblemInstance& problem)
      : windows_(problem.num_resources()) {
    for (const Cei* cei : problem.AllCeis()) {
      for (const ExecutionInterval& ei : cei->eis) {
        if (ei.resource < windows_.size()) {
          windows_[ei.resource].emplace_back(ei.start, ei.finish);
        }
      }
    }
    for (auto& spans : windows_) {
      std::sort(spans.begin(), spans.end());
      // Merge overlapping spans so lookup is a single binary search.
      size_t out = 0;
      for (const auto& span : spans) {
        if (out > 0 && span.first <= spans[out - 1].second + 1) {
          spans[out - 1].second = std::max(spans[out - 1].second, span.second);
        } else {
          spans[out++] = span;
        }
      }
      spans.resize(out);
    }
  }

  bool Covers(ResourceId resource, Chronon t) const {
    if (resource >= windows_.size()) return false;
    const auto& spans = windows_[resource];
    auto it = std::upper_bound(spans.begin(), spans.end(),
                               std::make_pair(t, kInvalidChronon),
                               [](const auto& a, const auto& b) {
                                 return a.first < b.first;
                               });
    if (it == spans.begin()) return false;
    --it;
    return t >= it->first && t <= it->second;
  }

 private:
  std::vector<std::vector<std::pair<Chronon, Chronon>>> windows_;
};

}  // namespace

Status AuditSchedule(const ProblemInstance& problem, const Schedule& schedule,
                     const ScheduleAuditOptions& options,
                     ScheduleAuditReport* report) {
  ScheduleAuditReport local;
  ScheduleAuditReport& out = report != nullptr ? *report : local;
  out = ScheduleAuditReport{};

  // --- Dimensions: the schedule must describe this instance's world. ---
  if (schedule.num_resources() != problem.num_resources() ||
      schedule.num_chronons() != problem.num_chronons()) {
    std::ostringstream os;
    os << "schedule is " << schedule.num_resources() << " resources x "
       << schedule.num_chronons() << " chronons, instance is "
       << problem.num_resources() << " x " << problem.num_chronons();
    return AuditFailure("dimension mismatch", os.str());
  }
  if (!options.resource_costs.empty() &&
      options.resource_costs.size() != problem.num_resources()) {
    return AuditFailure("options", "resource_costs must have one entry per "
                                   "resource when provided");
  }

  // --- Budget respected at every chronon (count or cost capacity). ---
  const BudgetVector& budget = problem.budget();
  double peak_utilization = -1.0;
  for (Chronon t = 0; t < problem.num_chronons(); ++t) {
    const std::vector<ResourceId>& probes = schedule.ProbesAt(t);
    out.total_probes += static_cast<int64_t>(probes.size());
    const int64_t allowed = budget.At(t);
    WEBMON_DCHECK_GE(allowed, 0) << "BudgetVector yielded a negative budget";
    double used = 0.0;
    for (ResourceId r : probes) {
      used += options.resource_costs.empty()
                  ? 1.0
                  : options.resource_costs[r];
    }
    if (used > static_cast<double>(allowed)) {
      std::ostringstream os;
      os << "chronon " << t << " uses " << used << " of budget " << allowed;
      return AuditFailure("budget exceeded", os.str());
    }
    if (!probes.empty() && used > peak_utilization) {
      peak_utilization = used;
      out.peak_chronon = t;
    }
  }

  // --- Every probe targets a live EI window. ---
  if (options.require_probes_target_eis) {
    const WindowIndex index(problem);
    for (Chronon t = 0; t < problem.num_chronons(); ++t) {
      for (ResourceId r : schedule.ProbesAt(t)) {
        if (!index.Covers(r, t)) {
          std::ostringstream os;
          os << "probe of resource " << r << " at chronon " << t
             << " is outside every EI window on that resource";
          return AuditFailure("probe outside EI windows", os.str());
        }
      }
    }
  }

  // --- Capture accounting matches completeness.cc. ---
  out.captured_ceis = CapturedCeiCount(problem, schedule);
  out.captured_eis = CapturedEiCount(problem, schedule);
  if (options.expected_captured_ceis >= 0 &&
      out.captured_ceis != options.expected_captured_ceis) {
    std::ostringstream os;
    os << "producer reported " << options.expected_captured_ceis
       << " captured CEIs, schedule evaluation finds " << out.captured_ceis;
    return AuditFailure("CEI accounting mismatch", os.str());
  }
  if (options.expected_probes >= 0 &&
      out.total_probes != options.expected_probes) {
    std::ostringstream os;
    os << "producer reported " << options.expected_probes
       << " probes, schedule holds " << out.total_probes;
    return AuditFailure("probe accounting mismatch", os.str());
  }
  if (options.min_captured_eis >= 0 &&
      out.captured_eis < options.min_captured_eis) {
    std::ostringstream os;
    os << "producer reported " << options.min_captured_eis
       << " captured EIs, schedule evaluation finds only " << out.captured_eis;
    return AuditFailure("EI accounting mismatch", os.str());
  }
  WEBMON_DCHECK_EQ(out.total_probes, schedule.TotalProbes())
      << "per-chronon probe views disagree with the schedule's own counter";
  return Status::OK();
}

Status AuditProbeLog(const ProblemInstance& problem,
                     const std::vector<ProbeEvent>& probes,
                     const ScheduleAuditOptions& options,
                     ScheduleAuditReport* report) {
  Schedule schedule(problem.num_resources(), problem.num_chronons());
  for (const ProbeEvent& probe : probes) {
    const Status added = schedule.AddProbe(probe.resource, probe.chronon);
    if (added.code() == StatusCode::kAlreadyExists) {
      std::ostringstream os;
      os << "resource " << probe.resource << " probed twice at chronon "
         << probe.chronon;
      return AuditFailure("duplicate probe", os.str());
    }
    if (!added.ok()) {
      std::ostringstream os;
      os << "probe of resource " << probe.resource << " at chronon "
         << probe.chronon << ": " << added.ToString();
      return AuditFailure("probe out of range", os.str());
    }
  }
  return AuditSchedule(problem, schedule, options, report);
}

}  // namespace webmon
