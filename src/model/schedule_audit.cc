#include "model/schedule_audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model/completeness.h"
#include "util/check.h"

namespace webmon {

namespace {

Status AuditFailure(const std::string& invariant, const std::string& detail) {
  return Status::FailedPrecondition("schedule audit: " + invariant + ": " +
                                    detail);
}

// Marks, per resource, the chronons covered by at least one EI window, so
// the probes-target-live-EIs scan is O(probes * log windows).
class WindowIndex {
 public:
  explicit WindowIndex(const ProblemInstance& problem)
      : windows_(problem.num_resources()) {
    for (const Cei* cei : problem.AllCeis()) {
      for (const ExecutionInterval& ei : cei->eis) {
        if (ei.resource < windows_.size()) {
          windows_[ei.resource].emplace_back(ei.start, ei.finish);
        }
      }
    }
    for (auto& spans : windows_) {
      std::sort(spans.begin(), spans.end());
      // Merge overlapping spans so lookup is a single binary search.
      size_t out = 0;
      for (const auto& span : spans) {
        if (out > 0 && span.first <= spans[out - 1].second + 1) {
          spans[out - 1].second = std::max(spans[out - 1].second, span.second);
        } else {
          spans[out++] = span;
        }
      }
      spans.resize(out);
    }
  }

  bool Covers(ResourceId resource, Chronon t) const {
    if (resource >= windows_.size()) return false;
    const auto& spans = windows_[resource];
    auto it = std::upper_bound(spans.begin(), spans.end(),
                               std::make_pair(t, kInvalidChronon),
                               [](const auto& a, const auto& b) {
                                 return a.first < b.first;
                               });
    if (it == spans.begin()) return false;
    --it;
    return t >= it->first && t <= it->second;
  }

 private:
  std::vector<std::vector<std::pair<Chronon, Chronon>>> windows_;
};

}  // namespace

Status AuditSchedule(const ProblemInstance& problem, const Schedule& schedule,
                     const ScheduleAuditOptions& options,
                     ScheduleAuditReport* report) {
  ScheduleAuditReport local;
  ScheduleAuditReport& out = report != nullptr ? *report : local;
  out = ScheduleAuditReport{};

  // --- Dimensions: the schedule must describe this instance's world. ---
  if (schedule.num_resources() != problem.num_resources() ||
      schedule.num_chronons() != problem.num_chronons()) {
    std::ostringstream os;
    os << "schedule is " << schedule.num_resources() << " resources x "
       << schedule.num_chronons() << " chronons, instance is "
       << problem.num_resources() << " x " << problem.num_chronons();
    return AuditFailure("dimension mismatch", os.str());
  }
  if (!options.resource_costs.empty() &&
      options.resource_costs.size() != problem.num_resources()) {
    return AuditFailure("options", "resource_costs must have one entry per "
                                   "resource when provided");
  }

  // --- Budget respected at every chronon (count or cost capacity). ---
  const BudgetVector& budget = problem.budget();
  double peak_utilization = -1.0;
  for (Chronon t = 0; t < problem.num_chronons(); ++t) {
    const std::vector<ResourceId>& probes = schedule.ProbesAt(t);
    out.total_probes += static_cast<int64_t>(probes.size());
    const int64_t allowed = budget.At(t);
    WEBMON_DCHECK_GE(allowed, 0) << "BudgetVector yielded a negative budget";
    double used = 0.0;
    for (ResourceId r : probes) {
      used += options.resource_costs.empty()
                  ? 1.0
                  : options.resource_costs[r];
    }
    if (used > static_cast<double>(allowed)) {
      std::ostringstream os;
      os << "chronon " << t << " uses " << used << " of budget " << allowed;
      return AuditFailure("budget exceeded", os.str());
    }
    if (!probes.empty() && used > peak_utilization) {
      peak_utilization = used;
      out.peak_chronon = t;
    }
  }

  // --- Every probe targets a live EI window. ---
  if (options.require_probes_target_eis) {
    const WindowIndex index(problem);
    for (Chronon t = 0; t < problem.num_chronons(); ++t) {
      for (ResourceId r : schedule.ProbesAt(t)) {
        if (!index.Covers(r, t)) {
          std::ostringstream os;
          os << "probe of resource " << r << " at chronon " << t
             << " is outside every EI window on that resource";
          return AuditFailure("probe outside EI windows", os.str());
        }
      }
    }
  }

  // --- Capture accounting matches completeness.cc. ---
  out.captured_ceis = CapturedCeiCount(problem, schedule);
  out.captured_eis = CapturedEiCount(problem, schedule);
  if (options.expected_captured_ceis >= 0 &&
      out.captured_ceis != options.expected_captured_ceis) {
    std::ostringstream os;
    os << "producer reported " << options.expected_captured_ceis
       << " captured CEIs, schedule evaluation finds " << out.captured_ceis;
    return AuditFailure("CEI accounting mismatch", os.str());
  }
  if (options.expected_probes >= 0 &&
      out.total_probes != options.expected_probes) {
    std::ostringstream os;
    os << "producer reported " << options.expected_probes
       << " probes, schedule holds " << out.total_probes;
    return AuditFailure("probe accounting mismatch", os.str());
  }
  if (options.min_captured_eis >= 0 &&
      out.captured_eis < options.min_captured_eis) {
    std::ostringstream os;
    os << "producer reported " << options.min_captured_eis
       << " captured EIs, schedule evaluation finds only " << out.captured_eis;
    return AuditFailure("EI accounting mismatch", os.str());
  }
  WEBMON_DCHECK_EQ(out.total_probes, schedule.TotalProbes())
      << "per-chronon probe views disagree with the schedule's own counter";
  return Status::OK();
}

Status AuditScheduleWithPushes(const ProblemInstance& problem,
                               const Schedule& schedule,
                               const std::vector<PushEvent>& pushes,
                               const ScheduleAuditOptions& options,
                               ScheduleAuditReport* report,
                               Schedule* augmented) {
  // Feasibility (budget, window targeting) concerns the probes the proxy
  // actually paid for — never the pushes — so run the base audit with the
  // capture expectations stripped.
  ScheduleAuditOptions feasibility = options;
  feasibility.expected_captured_ceis = -1;
  feasibility.min_captured_eis = -1;
  WEBMON_RETURN_IF_ERROR(
      AuditSchedule(problem, schedule, feasibility, report));

  // Capture accounting is evaluated on probes + pushes, exactly how the
  // online scheduler counts: pushed content captures active EIs for free.
  Schedule local(problem.num_resources(), problem.num_chronons());
  Schedule& combined = augmented != nullptr ? *augmented : local;
  combined = schedule;
  for (const PushEvent& push : pushes) {
    const Status added = combined.AddProbe(push.resource, push.chronon);
    if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
      // A push colliding with a probe (AlreadyExists) is harmless; anything
      // else means the push coordinates are outside the instance.
      std::ostringstream os;
      os << "push of resource " << push.resource << " at chronon "
         << push.chronon << ": " << added.ToString();
      return AuditFailure("push out of range", os.str());
    }
  }
  const int64_t captured_ceis = CapturedCeiCount(problem, combined);
  const int64_t captured_eis = CapturedEiCount(problem, combined);
  if (report != nullptr) {
    report->captured_ceis = captured_ceis;
    report->captured_eis = captured_eis;
  }
  if (options.expected_captured_ceis >= 0 &&
      captured_ceis != options.expected_captured_ceis) {
    std::ostringstream os;
    os << "producer reported " << options.expected_captured_ceis
       << " captured CEIs, probes+pushes evaluation finds " << captured_ceis;
    return AuditFailure("CEI accounting mismatch (with pushes)", os.str());
  }
  if (options.min_captured_eis >= 0 &&
      captured_eis < options.min_captured_eis) {
    std::ostringstream os;
    os << "producer reported " << options.min_captured_eis
       << " captured EIs, probes+pushes evaluation finds only "
       << captured_eis;
    return AuditFailure("EI accounting mismatch (with pushes)", os.str());
  }
  return Status::OK();
}

namespace {

Status CheckStatMatch(const char* what, const RunningStats& reported,
                      const RunningStats& recomputed, double tolerance) {
  if (reported.count() != recomputed.count()) {
    std::ostringstream os;
    os << what << ": reported " << reported.count()
       << " observations, recomputation finds " << recomputed.count();
    return AuditFailure("timeliness accounting mismatch", os.str());
  }
  if (recomputed.count() == 0) return Status::OK();
  const bool mean_ok =
      std::abs(reported.mean() - recomputed.mean()) <= tolerance;
  const bool min_ok = reported.min() == recomputed.min();
  const bool max_ok = reported.max() == recomputed.max();
  if (!mean_ok || !min_ok || !max_ok) {
    std::ostringstream os;
    os << what << ": reported " << reported.ToString()
       << ", recomputation finds " << recomputed.ToString();
    return AuditFailure("timeliness accounting mismatch", os.str());
  }
  return Status::OK();
}

}  // namespace

Status AuditTimeliness(const ProblemInstance& problem,
                       const Schedule& schedule,
                       const TimelinessReport& reported, double tolerance) {
  const TimelinessReport recomputed = ComputeTimeliness(problem, schedule);
  WEBMON_RETURN_IF_ERROR(CheckStatMatch("EI capture delay",
                                        reported.ei_capture_delay,
                                        recomputed.ei_capture_delay,
                                        tolerance));
  WEBMON_RETURN_IF_ERROR(CheckStatMatch("CEI completion delay",
                                        reported.cei_completion_delay,
                                        recomputed.cei_completion_delay,
                                        tolerance));
  if (std::abs(reported.immediate_fraction - recomputed.immediate_fraction) >
      tolerance) {
    std::ostringstream os;
    os << "reported immediate fraction " << reported.immediate_fraction
       << ", recomputation finds " << recomputed.immediate_fraction;
    return AuditFailure("timeliness accounting mismatch", os.str());
  }
  return Status::OK();
}

Status AuditFaultRun(const ProblemInstance& problem, const Schedule& schedule,
                     const std::vector<ProbeAttempt>& attempts,
                     const FaultHandlingOptions& fault,
                     const ScheduleAuditOptions& schedule_options,
                     FaultAuditReport* report) {
  FaultAuditReport local;
  FaultAuditReport& out = report != nullptr ? *report : local;
  out = FaultAuditReport{};

  // Per-resource replica of the scheduler's failure-handling state machine,
  // rebuilt purely from the attempt log.
  struct ResourceSim {
    bool open = false;
    Chronon open_until = 0;
    Chronon cooldown = 0;
    Chronon retry_not_before = 0;
    int32_t consecutive_failures = 0;
  };
  std::vector<ResourceSim> sims(problem.num_resources());
  // Successful attempts, replayed; must reproduce `schedule` exactly.
  Schedule replay(problem.num_resources(), problem.num_chronons());
  const std::vector<double>& costs = schedule_options.resource_costs;
  if (!costs.empty() && costs.size() != problem.num_resources()) {
    return AuditFailure("options", "resource_costs must have one entry per "
                                   "resource when provided");
  }

  Chronon current = kInvalidChronon;
  double cost_used = 0.0;
  std::vector<uint8_t> attempted_now(problem.num_resources(), 0);
  std::vector<ResourceId> attempted_list;
  for (size_t i = 0; i < attempts.size(); ++i) {
    const ProbeAttempt& a = attempts[i];
    if (a.resource >= problem.num_resources() || a.chronon < 0 ||
        a.chronon >= problem.num_chronons()) {
      std::ostringstream os;
      os << "attempt " << i << " targets resource " << a.resource
         << " at chronon " << a.chronon << ", outside the instance";
      return AuditFailure("attempt out of range", os.str());
    }
    if (current != kInvalidChronon && a.chronon < current) {
      std::ostringstream os;
      os << "attempt " << i << " at chronon " << a.chronon
         << " after an attempt at chronon " << current;
      return AuditFailure("attempt log not chronological", os.str());
    }
    if (a.chronon != current) {
      current = a.chronon;
      cost_used = 0.0;
      for (ResourceId r : attempted_list) attempted_now[r] = 0;
      attempted_list.clear();
    }
    if (attempted_now[a.resource]) {
      std::ostringstream os;
      os << "resource " << a.resource << " attempted twice at chronon "
         << a.chronon;
      return AuditFailure("duplicate attempt", os.str());
    }
    attempted_now[a.resource] = 1;
    attempted_list.push_back(a.resource);

    // Budget: failed attempts spend exactly like successful ones.
    cost_used += costs.empty() ? 1.0 : costs[a.resource];
    const int64_t allowed = problem.budget().At(a.chronon);
    if (cost_used > static_cast<double>(allowed)) {
      std::ostringstream os;
      os << "chronon " << a.chronon << " spends " << cost_used
         << " budget units on attempts, budget is " << allowed;
      return AuditFailure("attempt budget exceeded", os.str());
    }

    ResourceSim& sim = sims[a.resource];
    const bool trial = sim.open;
    if (sim.open) {
      if (a.chronon < sim.open_until) {
        std::ostringstream os;
        os << "resource " << a.resource << " attempted at chronon "
           << a.chronon << " while its breaker is open until chronon "
           << sim.open_until;
        return AuditFailure("probe issued to an open breaker", os.str());
      }
      // Cooldown elapsed: this attempt is the half-open trial.
      sim.open = false;
    } else if (a.chronon < sim.retry_not_before) {
      std::ostringstream os;
      os << "resource " << a.resource << " retried at chronon " << a.chronon
         << " before its backoff gate at chronon " << sim.retry_not_before;
      return AuditFailure("retry before backoff elapsed", os.str());
    }

    ++out.attempts;
    if (sim.consecutive_failures > 0) ++out.retries;
    if (ProbeSucceeded(a.outcome)) {
      ++out.successes;
      sim.consecutive_failures = 0;
      sim.retry_not_before = 0;
      sim.cooldown = 0;
      if ((a.incident & ProbeAttempt::kDetectorOpen) != 0 &&
          !schedule.Probed(a.resource, a.chronon)) {
        // A successful fleet-breaker trial with no live EI to capture is
        // a pure health check — legally absent from the schedule.
        continue;
      }
      const Status added = replay.AddProbe(a.resource, a.chronon);
      WEBMON_DCHECK(added.ok())  // duplicate-attempt check already fired
          << "replaying a successful attempt failed: " << added.ToString();
      continue;
    }
    ++out.failures;
    ++sim.consecutive_failures;
    if (trial) {
      // Failed half-open trial: re-open with the cooldown doubled (capped).
      sim.cooldown = std::min(sim.cooldown * 2, fault.breaker_max_cooldown);
      sim.open_until = a.chronon + sim.cooldown;
      sim.open = true;
      ++out.breaker_trips;
    } else if (fault.breaker_failure_threshold > 0 &&
               sim.consecutive_failures >= fault.breaker_failure_threshold) {
      sim.cooldown = fault.breaker_cooldown;
      sim.open_until = a.chronon + sim.cooldown;
      sim.open = true;
      ++out.breaker_trips;
    } else {
      // Pure exponential lower bound; the scheduler's jitter only ever adds
      // delay on top of this.
      const int32_t streak = std::min(sim.consecutive_failures, 30);
      Chronon backoff =
          std::min(fault.backoff_base << (streak - 1), fault.backoff_cap);
      if (backoff < 1) backoff = 1;
      sim.retry_not_before = a.chronon + backoff;
    }
  }

  // The schedule must be exactly the successful attempts: a failed attempt
  // sneaking into the schedule (phantom capture) or a successful one
  // missing from it (lost capture) both surface here.
  if (replay.TotalProbes() != schedule.TotalProbes()) {
    std::ostringstream os;
    os << "attempt log holds " << replay.TotalProbes()
       << " successful attempts, schedule holds " << schedule.TotalProbes()
       << " probes";
    return AuditFailure("schedule/attempt-log mismatch", os.str());
  }
  for (Chronon t = 0; t < problem.num_chronons(); ++t) {
    for (ResourceId r : schedule.ProbesAt(t)) {
      if (!replay.Probed(r, t)) {
        std::ostringstream os;
        os << "schedule probes resource " << r << " at chronon " << t
           << " but the attempt log has no successful attempt there";
        return AuditFailure("schedule/attempt-log mismatch", os.str());
      }
    }
  }

  return AuditSchedule(problem, schedule, schedule_options, nullptr);
}

Status AuditProbeLog(const ProblemInstance& problem,
                     const std::vector<ProbeEvent>& probes,
                     const ScheduleAuditOptions& options,
                     ScheduleAuditReport* report) {
  Schedule schedule(problem.num_resources(), problem.num_chronons());
  for (const ProbeEvent& probe : probes) {
    const Status added = schedule.AddProbe(probe.resource, probe.chronon);
    if (added.code() == StatusCode::kAlreadyExists) {
      std::ostringstream os;
      os << "resource " << probe.resource << " probed twice at chronon "
         << probe.chronon;
      return AuditFailure("duplicate probe", os.str());
    }
    if (!added.ok()) {
      std::ostringstream os;
      os << "probe of resource " << probe.resource << " at chronon "
         << probe.chronon << ": " << added.ToString();
      return AuditFailure("probe out of range", os.str());
    }
  }
  return AuditSchedule(problem, schedule, options, report);
}

}  // namespace webmon
