// Rank-1 decomposition: treat every EI as an independent single-EI CEI.
//
// Figure 10 reports each policy's completeness relative to a worst-case
// upper bound on the optimal completeness, computed by "measuring the
// completeness in terms of single EIs that are captured (i.e., assuming
// rank(P) = 1)". The decomposition implements that: each EI of the original
// instance becomes its own CEI in its own profile, so an optimal rank-1 run
// (S-EDF under Proposition 1's conditions) yields the EI-capture upper
// bound.

#ifndef WEBMON_MODEL_DECOMPOSE_H_
#define WEBMON_MODEL_DECOMPOSE_H_

#include "model/problem.h"
#include "util/status.h"

namespace webmon {

/// Returns an instance with identical resources/epoch/budget where every EI
/// of `problem` is a separate single-EI CEI (one profile per CEI). Arrivals
/// are inherited from the original parent CEI so the online reveal order is
/// unchanged.
StatusOr<ProblemInstance> DecomposeToRank1(const ProblemInstance& problem);

}  // namespace webmon

#endif  // WEBMON_MODEL_DECOMPOSE_H_
