// ExecutionInterval (EI): the leaf of the profile hierarchy.
//
// An EI I = [T_s, T_f] on resource r demands that the proxy probe r at some
// chronon in the closed interval [T_s, T_f] for I to be captured
// (paper Section III-A).

#ifndef WEBMON_MODEL_INTERVAL_H_
#define WEBMON_MODEL_INTERVAL_H_

#include <string>

#include "model/types.h"

namespace webmon {

/// A simple execution interval: passive data, invariant start <= finish is
/// the caller's responsibility (ProblemInstance::Validate enforces it).
struct ExecutionInterval {
  /// Unique id within the problem instance (assigned by the builder).
  EiId id = 0;
  /// The resource this interval refers to.
  ResourceId resource = 0;
  /// First chronon at which a probe captures this EI (inclusive).
  Chronon start = 0;
  /// Last chronon at which a probe captures this EI (inclusive).
  Chronon finish = 0;

  /// |I|: the number of chronons in the interval.
  Chronon Length() const { return finish - start + 1; }

  /// True iff `t` lies inside [start, finish].
  bool Contains(Chronon t) const { return t >= start && t <= finish; }

  /// True iff this interval and `other` share at least one chronon.
  bool Overlaps(const ExecutionInterval& other) const {
    return start <= other.finish && other.start <= finish;
  }

  /// "EI{id r=.. [s,f]}" for diagnostics.
  std::string ToString() const;

  friend bool operator==(const ExecutionInterval& a,
                         const ExecutionInterval& b) = default;
};

}  // namespace webmon

#endif  // WEBMON_MODEL_INTERVAL_H_
