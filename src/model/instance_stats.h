// Instance diagnostics: the structural quantities that determine how hard a
// Complex Monitoring instance is.
//
// The paper's analysis pivots on a handful of structural properties — rank,
// EI window widths, intra-resource overlap, and how the demanded probes
// compare to the available budget. InstanceStats computes them for any
// ProblemInstance; the CLI prints them for generated and replayed
// instances, and experiments use the load factor to position themselves on
// the under/oversubscribed spectrum.

#ifndef WEBMON_MODEL_INSTANCE_STATS_H_
#define WEBMON_MODEL_INSTANCE_STATS_H_

#include <string>

#include "model/problem.h"
#include "util/stats.h"

namespace webmon {

/// Structural statistics of one instance.
struct InstanceStats {
  int64_t num_profiles = 0;
  int64_t num_ceis = 0;
  int64_t num_eis = 0;
  size_t rank = 0;
  /// Distribution of CEI ranks.
  RunningStats cei_rank;
  /// Distribution of EI window lengths.
  RunningStats ei_length;
  /// Demanded probes (one per EI) divided by the total budget over the
  /// epoch. > 1 means oversubscribed even before collision effects.
  double load_factor = 0.0;
  /// CEIs containing two EIs on the same resource that overlap in time.
  int64_t ceis_with_intra_overlap = 0;
  /// Unit-width (P^[1]) instance?
  bool unit_width = false;
  /// Maximum number of EIs whose windows contain any single chronon
  /// (peak concurrent demand).
  int64_t peak_concurrent_eis = 0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Computes statistics for `problem`.
InstanceStats ComputeInstanceStats(const ProblemInstance& problem);

}  // namespace webmon

#endif  // WEBMON_MODEL_INSTANCE_STATS_H_
