#include "model/instance_stats.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace webmon {

InstanceStats ComputeInstanceStats(const ProblemInstance& problem) {
  InstanceStats stats;
  stats.num_profiles = static_cast<int64_t>(problem.profiles().size());
  stats.num_ceis = problem.TotalCeis();
  stats.num_eis = problem.TotalEis();
  stats.rank = problem.Rank();
  stats.unit_width = problem.IsUnitWidth();

  const Chronon k = problem.num_chronons();
  // Sweep-line demand: +1 at each EI start, -1 after each finish.
  std::vector<int64_t> delta(static_cast<size_t>(k) + 1, 0);
  int64_t total_budget = 0;
  for (Chronon t = 0; t < k; ++t) total_budget += problem.budget().At(t);

  for (const auto& profile : problem.profiles()) {
    for (const auto& cei : profile.ceis) {
      stats.cei_rank.Add(static_cast<double>(cei.Rank()));
      if (cei.HasIntraResourceOverlap()) ++stats.ceis_with_intra_overlap;
      for (const auto& ei : cei.eis) {
        stats.ei_length.Add(static_cast<double>(ei.Length()));
        ++delta[static_cast<size_t>(ei.start)];
        --delta[static_cast<size_t>(ei.finish) + 1];
      }
    }
  }

  int64_t running = 0;
  for (Chronon t = 0; t < k; ++t) {
    running += delta[static_cast<size_t>(t)];
    stats.peak_concurrent_eis = std::max(stats.peak_concurrent_eis, running);
  }

  stats.load_factor =
      total_budget == 0
          ? 0.0
          : static_cast<double>(stats.num_eis) /
                static_cast<double>(total_budget);
  return stats;
}

std::string InstanceStats::ToString() const {
  std::ostringstream os;
  os << "instance: " << num_profiles << " profiles, " << num_ceis
     << " CEIs, " << num_eis << " EIs, rank " << rank
     << (unit_width ? " (P^[1])" : "") << "\n"
     << "CEI rank: " << cei_rank.ToString() << "\n"
     << "EI length: " << ei_length.ToString() << "\n"
     << "load factor (EIs / total budget): " << load_factor << "\n"
     << "peak concurrent EIs: " << peak_concurrent_eis << "\n"
     << "CEIs with intra-resource overlap: " << ceis_with_intra_overlap
     << "\n";
  return os.str();
}

}  // namespace webmon
