// Deterministic schedule auditor: validates any policy's emitted schedule
// against the problem instance it was produced for.
//
// The online scheduler, the offline solvers, and every policy are supposed
// to uphold the same externally observable contract (paper Section III):
//   * budget respected — at every chronon T_j at most C_j probes (or, under
//     the varying-cost extension, total cost at most C_j),
//   * probes target live EIs — every probe (r, t) lands inside the window
//     [T_s, T_f] of at least one EI on resource r,
//   * accounting matches — the producer's reported capture/probe counters
//     agree with re-evaluating the schedule via completeness.cc.
// The auditor re-derives all of this from the (instance, schedule) pair
// alone, so a policy refactor that silently breaks an invariant fails the
// audit even when the completeness numbers still look plausible.

#ifndef WEBMON_MODEL_SCHEDULE_AUDIT_H_
#define WEBMON_MODEL_SCHEDULE_AUDIT_H_

#include <cstdint>
#include <vector>

#include "model/problem.h"
#include "model/schedule.h"
#include "model/types.h"
#include "util/status.h"

namespace webmon {

/// One probe emission event, for auditing raw probe streams (e.g. a policy
/// driver's log) that have not been deduplicated by a Schedule.
struct ProbeEvent {
  ResourceId resource = 0;
  Chronon chronon = 0;
};

/// What the auditor enforces beyond the unconditional feasibility checks.
struct ScheduleAuditOptions {
  /// When >= 0, the schedule must capture exactly this many CEIs per
  /// completeness.cc (cross-checks a scheduler's ceis_captured counter).
  int64_t expected_captured_ceis = -1;
  /// When >= 0, the schedule must hold exactly this many probes
  /// (cross-checks probes_issued; a double-issued probe shows up as a
  /// mismatch because Schedule stores each (resource, chronon) once).
  int64_t expected_probes = -1;
  /// When >= 0, the schedule-evaluated EI capture count must be at least
  /// this (a probe may land in the window of an EI whose CEI already died,
  /// so the producer's counter is a lower bound, never an upper one).
  int64_t min_captured_eis = -1;
  /// Require every probe to land inside the window of at least one EI of
  /// its resource. On for every paper policy; disable only for schedules
  /// produced outside the candidate machinery.
  bool require_probes_target_eis = true;
  /// Varying-cost extension: when non-empty (one entry per resource, each
  /// > 0), chronon budgets are cost capacities and the audit sums
  /// resource_costs[r] per probe instead of counting 1.
  std::vector<double> resource_costs;
};

/// Counters the audit derived; all fields are schedule-evaluated.
struct ScheduleAuditReport {
  int64_t total_probes = 0;
  int64_t captured_ceis = 0;
  int64_t captured_eis = 0;
  /// Chronon with the highest budget utilization (diagnostics);
  /// kInvalidChronon for an empty schedule.
  Chronon peak_chronon = kInvalidChronon;
};

/// Audits `schedule` against `problem`. Returns OK iff every invariant
/// holds; the error status names the first violated invariant and the
/// offending coordinates. `report` (optional) receives derived counters
/// even on failure, as far as the audit got.
Status AuditSchedule(const ProblemInstance& problem, const Schedule& schedule,
                     const ScheduleAuditOptions& options = {},
                     ScheduleAuditReport* report = nullptr);

/// Audits a raw probe stream: rejects out-of-range coordinates and
/// duplicate (resource, chronon) emissions, then replays the events into a
/// Schedule and applies AuditSchedule.
Status AuditProbeLog(const ProblemInstance& problem,
                     const std::vector<ProbeEvent>& probes,
                     const ScheduleAuditOptions& options = {},
                     ScheduleAuditReport* report = nullptr);

}  // namespace webmon

#endif  // WEBMON_MODEL_SCHEDULE_AUDIT_H_
