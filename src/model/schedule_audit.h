// Deterministic schedule auditor: validates any policy's emitted schedule
// against the problem instance it was produced for.
//
// The online scheduler, the offline solvers, and every policy are supposed
// to uphold the same externally observable contract (paper Section III):
//   * budget respected — at every chronon T_j at most C_j probes (or, under
//     the varying-cost extension, total cost at most C_j),
//   * probes target live EIs — every probe (r, t) lands inside the window
//     [T_s, T_f] of at least one EI on resource r,
//   * accounting matches — the producer's reported capture/probe counters
//     agree with re-evaluating the schedule via completeness.cc.
// The auditor re-derives all of this from the (instance, schedule) pair
// alone, so a policy refactor that silently breaks an invariant fails the
// audit even when the completeness numbers still look plausible.

#ifndef WEBMON_MODEL_SCHEDULE_AUDIT_H_
#define WEBMON_MODEL_SCHEDULE_AUDIT_H_

#include <cstdint>
#include <vector>

#include "model/probe_outcome.h"
#include "model/problem.h"
#include "model/schedule.h"
#include "model/timeliness.h"
#include "model/types.h"
#include "util/status.h"

namespace webmon {

/// One probe emission event, for auditing raw probe streams (e.g. a policy
/// driver's log) that have not been deduplicated by a Schedule.
struct ProbeEvent {
  ResourceId resource = 0;
  Chronon chronon = 0;
};

/// One server-push delivery event (paper Section III: "occasionally a server
/// may push an update"). Pushes capture active EIs for free and never appear
/// in the probe Schedule.
struct PushEvent {
  ResourceId resource = 0;
  Chronon chronon = 0;
};

/// What the auditor enforces beyond the unconditional feasibility checks.
struct ScheduleAuditOptions {
  /// When >= 0, the schedule must capture exactly this many CEIs per
  /// completeness.cc (cross-checks a scheduler's ceis_captured counter).
  int64_t expected_captured_ceis = -1;
  /// When >= 0, the schedule must hold exactly this many probes
  /// (cross-checks probes_issued; a double-issued probe shows up as a
  /// mismatch because Schedule stores each (resource, chronon) once).
  int64_t expected_probes = -1;
  /// When >= 0, the schedule-evaluated EI capture count must be at least
  /// this (a probe may land in the window of an EI whose CEI already died,
  /// so the producer's counter is a lower bound, never an upper one).
  int64_t min_captured_eis = -1;
  /// Require every probe to land inside the window of at least one EI of
  /// its resource. On for every paper policy; disable only for schedules
  /// produced outside the candidate machinery.
  bool require_probes_target_eis = true;
  /// Varying-cost extension: when non-empty (one entry per resource, each
  /// > 0), chronon budgets are cost capacities and the audit sums
  /// resource_costs[r] per probe instead of counting 1.
  std::vector<double> resource_costs;
};

/// Counters the audit derived; all fields are schedule-evaluated.
struct ScheduleAuditReport {
  int64_t total_probes = 0;
  int64_t captured_ceis = 0;
  int64_t captured_eis = 0;
  /// Chronon with the highest budget utilization (diagnostics);
  /// kInvalidChronon for an empty schedule.
  Chronon peak_chronon = kInvalidChronon;
};

/// Audits `schedule` against `problem`. Returns OK iff every invariant
/// holds; the error status names the first violated invariant and the
/// offending coordinates. `report` (optional) receives derived counters
/// even on failure, as far as the audit got.
Status AuditSchedule(const ProblemInstance& problem, const Schedule& schedule,
                     const ScheduleAuditOptions& options = {},
                     ScheduleAuditReport* report = nullptr);

/// Audits a raw probe stream: rejects out-of-range coordinates and
/// duplicate (resource, chronon) emissions, then replays the events into a
/// Schedule and applies AuditSchedule.
Status AuditProbeLog(const ProblemInstance& problem,
                     const std::vector<ProbeEvent>& probes,
                     const ScheduleAuditOptions& options = {},
                     ScheduleAuditReport* report = nullptr);

/// Audits a run that also received server pushes. The probe Schedule alone
/// must satisfy the budget (pushes are free), while the capture accounting
/// (expected_captured_ceis / min_captured_eis) is checked against the
/// schedule augmented with the push events — exactly how the online
/// scheduler counts. Push coordinates must be in range; pushes are not
/// required to land in an EI window (a server pushes when it pleases), and
/// a push colliding with a probe of the same (resource, chronon) is
/// harmless. `augmented` (optional) receives the probes+pushes schedule the
/// capture accounting was evaluated on.
Status AuditScheduleWithPushes(const ProblemInstance& problem,
                               const Schedule& schedule,
                               const std::vector<PushEvent>& pushes,
                               const ScheduleAuditOptions& options = {},
                               ScheduleAuditReport* report = nullptr,
                               Schedule* augmented = nullptr);

/// Audits a producer's timeliness accounting: recomputes ComputeTimeliness
/// from (problem, schedule) and requires the reported counts to match
/// exactly and the reported means / immediate fraction to agree within
/// `tolerance` (floating-point accumulation order may differ).
Status AuditTimeliness(const ProblemInstance& problem,
                       const Schedule& schedule,
                       const TimelinessReport& reported,
                       double tolerance = 1e-9);

/// Derived counters of a fault-run audit; all fields are attempt-log
/// evaluated.
struct FaultAuditReport {
  int64_t attempts = 0;
  int64_t failures = 0;
  int64_t successes = 0;
  /// Breaker open transitions implied by the attempt log.
  int64_t breaker_trips = 0;
  /// Attempts issued while their resource had a live failure streak.
  int64_t retries = 0;
};

/// Audits a fault-injected run: the probe `schedule` (successful probes
/// only) plus the full `attempts` log (every issued probe with its outcome)
/// against the failure-handling contract in `fault`:
///   * the successful attempts reproduce `schedule` exactly (failed probes
///     never capture; successful ones always enter the schedule) — with
///     one exemption: a successful attempt tagged kDetectorOpen (a
///     fleet-breaker end-of-incident trial, see faults/incident_detector.h)
///     may be absent from the schedule, because a trial probe with no live
///     EI to capture is a pure health check,
///   * per-chronon attempt count (or cost) respects the budget — failed
///     attempts spend budget like successful ones,
///   * after the k-th consecutive failure of a resource, the next attempt
///     waits at least min(backoff_base * 2^(k-1), backoff_cap) chronons
///     (jitter only adds delay, so this pure bound must hold),
///   * no attempt is issued to a resource whose breaker is open: after
///     breaker_failure_threshold consecutive failures, the earliest next
///     attempt is `cooldown` chronons later (the half-open trial); a failed
///     trial doubles the cooldown up to breaker_max_cooldown.
/// Also applies AuditSchedule(problem, schedule, schedule_options) for the
/// schedule-level invariants. `report` (optional) receives derived counters
/// to cross-check SchedulerStats.
Status AuditFaultRun(const ProblemInstance& problem, const Schedule& schedule,
                     const std::vector<ProbeAttempt>& attempts,
                     const FaultHandlingOptions& fault,
                     const ScheduleAuditOptions& schedule_options = {},
                     FaultAuditReport* report = nullptr);

}  // namespace webmon

#endif  // WEBMON_MODEL_SCHEDULE_AUDIT_H_
