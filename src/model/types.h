// Fundamental identifiers and time units for the monitoring model
// (paper Section III).

#ifndef WEBMON_MODEL_TYPES_H_
#define WEBMON_MODEL_TYPES_H_

#include <cstdint>

namespace webmon {

/// An indivisible unit of time (paper footnote 10). Chronons are 0-based
/// indices into the epoch T = (T_0, ..., T_{K-1}).
using Chronon = int64_t;

/// Sentinel for "no chronon".
inline constexpr Chronon kInvalidChronon = -1;

/// Index of a resource r_i in the resource set R = {r_1, ..., r_n}.
/// 0-based internally.
using ResourceId = uint32_t;

/// Unique identifier of an execution interval within a problem instance.
using EiId = uint64_t;

/// Unique identifier of a complex execution interval within a problem
/// instance.
using CeiId = uint64_t;

/// Index of a client profile p in P = {p_1, ..., p_m}. 0-based internally.
using ProfileId = uint32_t;

}  // namespace webmon

#endif  // WEBMON_MODEL_TYPES_H_
