// Complex execution interval (CEI): a conjunction of EIs.
//
// A CEI eta = {I_1, ..., I_l} is captured iff every one of its EIs is
// captured (AND semantics, paper Section III-A). |eta| is the number of EIs
// and is the CEI's contribution to its profile's rank.

#ifndef WEBMON_MODEL_CEI_H_
#define WEBMON_MODEL_CEI_H_

#include <string>
#include <vector>

#include "model/interval.h"
#include "model/types.h"

namespace webmon {

/// A complex execution interval. Passive data; helpers do not enforce
/// invariants (ProblemInstance::Validate does).
struct Cei {
  /// Unique id within the problem instance.
  CeiId id = 0;
  /// Owning profile (index into ProblemInstance::profiles()).
  ProfileId profile = 0;
  /// The member execution intervals. Non-empty in a valid instance.
  std::vector<ExecutionInterval> eis;
  /// Chronon at which the online proxy learns about this CEI. In an offline
  /// setting this is irrelevant; online it defaults to the earliest EI start
  /// (the proxy cannot act on an EI before its start anyway).
  Chronon arrival = 0;
  /// Client utility of capturing this CEI (the paper's Section VII "profile
  /// utilities" extension). 1 recovers the unweighted objective of Eq. 1.
  double weight = 1.0;
  /// Minimum number of EIs that must be captured to satisfy this CEI (the
  /// paper's Section VII "alternatives" extension). 0 means ALL EIs — the
  /// paper's baseline AND semantics. Must be <= |eis| in a valid instance.
  uint32_t required = 0;

  /// |eta|: the number of execution intervals.
  size_t Rank() const { return eis.size(); }

  /// Number of EI captures needed to satisfy this CEI: `required` when set,
  /// otherwise all of them.
  size_t RequiredCaptures() const {
    return required == 0 ? eis.size() : required;
  }

  /// Earliest start chronon over all EIs; kInvalidChronon when empty.
  Chronon EarliestStart() const;

  /// Latest finish chronon over all EIs; kInvalidChronon when empty.
  Chronon LatestFinish() const;

  /// Sum over EIs of |I| — the "total chronons" quantity used by the M-EDF
  /// intuition and by the competitive bound of Proposition 2.
  Chronon TotalChronons() const;

  /// True iff two EIs of this CEI refer to the same resource and overlap in
  /// time (intra-resource overlap, Section III-A). The theoretical bounds
  /// (Props. 1, 2) assume instances without such overlaps.
  bool HasIntraResourceOverlap() const;

  /// True iff every EI has width exactly one chronon (the P^[1] class of
  /// Proposition 3).
  bool IsUnitWidth() const;

  /// "CEI{id p=.. arrival=.. k EIs}" for diagnostics.
  std::string ToString() const;
};

/// Terminal-state audit of a CEI's life inside the online scheduler. A CEI
/// moves kUnknown -> kPending on arrival and then reaches exactly one of the
/// three terminal states; the scheduler's per-outcome counters
/// (ceis_captured / ceis_expired / ceis_cancelled) partition the terminal
/// population, which the churn tests assert as an accounting closure.
enum class CeiLifecycle : uint8_t {
  /// Never registered with the scheduler (or rejected on submission).
  kUnknown = 0,
  /// Registered and still schedulable (some EIs may already be captured).
  kPending = 1,
  /// Satisfied: RequiredCaptures() of its EIs were captured.
  kCaptured = 2,
  /// Dead by expiry: too many EI windows closed uncaptured.
  kExpired = 3,
  /// Dead by client cancellation (Proxy::Cancel).
  kCancelled = 4,
};

/// Stable lower-case name for logs and test diagnostics.
constexpr const char* CeiLifecycleName(CeiLifecycle lifecycle) {
  switch (lifecycle) {
    case CeiLifecycle::kPending:
      return "pending";
    case CeiLifecycle::kCaptured:
      return "captured";
    case CeiLifecycle::kExpired:
      return "expired";
    case CeiLifecycle::kCancelled:
      return "cancelled";
    case CeiLifecycle::kUnknown:
      break;
  }
  return "unknown";
}

}  // namespace webmon

#endif  // WEBMON_MODEL_CEI_H_
