#include "model/decompose.h"

#include <algorithm>

namespace webmon {

StatusOr<ProblemInstance> DecomposeToRank1(const ProblemInstance& problem) {
  ProblemBuilder builder(problem.num_resources(), problem.num_chronons(),
                         problem.budget());
  for (const auto& profile : problem.profiles()) {
    for (const auto& cei : profile.ceis) {
      for (const auto& ei : cei.eis) {
        builder.BeginProfile();
        // The reveal chronon cannot exceed the EI's own window end (the
        // parent may have revealed before other siblings expired).
        const Chronon arrival = std::min(cei.arrival, ei.start);
        WEBMON_RETURN_IF_ERROR(
            builder.AddCei({{ei.resource, ei.start, ei.finish}}, arrival)
                .status());
      }
    }
  }
  return builder.Build();
}

}  // namespace webmon
