// Text serialization of ProblemInstance.
//
// Lets instances be saved, shared, and replayed across runs and tools (the
// CLI can re-run a saved instance under different policies). The format is
// line-oriented and versioned:
//
//   webmon-problem 1
//   resources <n>
//   chronons <K>
//   budget uniform <c>            (or: budget perchronon <c0> <c1> ...)
//   profile
//   cei <arrival> <weight> <required>
//   ei <resource> <start> <finish>
//   ...
//
// Ids are regenerated on load (they are instance-local), so a round trip
// preserves structure, windows, arrivals, weights and semantics, but not
// the specific id values.

#ifndef WEBMON_MODEL_SERIALIZE_H_
#define WEBMON_MODEL_SERIALIZE_H_

#include <string>

#include "model/problem.h"
#include "util/status.h"

namespace webmon {

/// Serializes `problem` to the text format above.
std::string ProblemToText(const ProblemInstance& problem);

/// Parses the text format; the result is validated.
StatusOr<ProblemInstance> ProblemFromText(const std::string& text);

/// File round-trip helpers.
Status SaveProblemToFile(const ProblemInstance& problem,
                         const std::string& path);
StatusOr<ProblemInstance> LoadProblemFromFile(const std::string& path);

}  // namespace webmon

#endif  // WEBMON_MODEL_SERIALIZE_H_
