// Data delivery schedules and per-chronon probing budgets
// (paper Sections III-B, III-C).

#ifndef WEBMON_MODEL_SCHEDULE_H_
#define WEBMON_MODEL_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/types.h"
#include "util/status.h"

namespace webmon {

/// The budget vector C = (C_1, ..., C_K): at chronon T_j the proxy may probe
/// at most C_j resources. Stored either as a uniform value or per chronon.
class BudgetVector {
 public:
  /// Uniform budget `c` at every chronon. CHECK-fails when c < 0: a
  /// negative probe capacity is always a programming error.
  static BudgetVector Uniform(int64_t c);

  /// Per-chronon budget; entry j applies at chronon j. Chronons beyond the
  /// vector's length get budget 0. CHECK-fails on negative entries.
  static BudgetVector PerChronon(std::vector<int64_t> budgets);

  /// Budget at chronon `t` (>= 0 expected; negative t yields 0).
  int64_t At(Chronon t) const;

  /// C_max = max_j C_j over [0, K); `k` is the epoch length used for the
  /// uniform case.
  int64_t Max(Chronon k) const;

  bool is_uniform() const { return per_chronon_.empty(); }
  int64_t uniform_value() const { return uniform_; }

 private:
  BudgetVector() = default;
  int64_t uniform_ = 0;
  std::vector<int64_t> per_chronon_;
};

/// A data delivery schedule S: the set of (resource, chronon) probes.
///
/// Stored both per-chronon (for budget checks and replay) and per-resource
/// with sorted chronons (for O(log) capture queries). All mutation goes
/// through AddProbe so the two views stay consistent.
class Schedule {
 public:
  /// Creates an empty schedule over `num_resources` resources and
  /// `num_chronons` chronons.
  Schedule(uint32_t num_resources, Chronon num_chronons);

  /// Records a probe of `resource` at chronon `t`. Idempotent: probing the
  /// same (resource, chronon) twice is a no-op and returns AlreadyExists.
  /// Fails with OutOfRange for coordinates outside the instance.
  Status AddProbe(ResourceId resource, Chronon t);

  /// True iff `resource` is probed exactly at chronon `t`.
  bool Probed(ResourceId resource, Chronon t) const;

  /// True iff `resource` is probed at any chronon in [from, to] inclusive.
  bool ProbedInRange(ResourceId resource, Chronon from, Chronon to) const;

  /// Resources probed at chronon `t` (unordered).
  const std::vector<ResourceId>& ProbesAt(Chronon t) const;

  /// Sorted chronons at which `resource` is probed.
  const std::vector<Chronon>& ProbesOf(ResourceId resource) const;

  /// Total number of probes in the schedule.
  int64_t TotalProbes() const { return total_probes_; }

  /// OK iff no chronon exceeds its budget.
  Status CheckFeasible(const BudgetVector& budget) const;

  uint32_t num_resources() const { return num_resources_; }
  Chronon num_chronons() const { return num_chronons_; }

  /// Removes all probes.
  void Clear();

 private:
  uint32_t num_resources_;
  Chronon num_chronons_;
  int64_t total_probes_ = 0;
  // by_chronon_[t] = resources probed at t (insertion order).
  std::vector<std::vector<ResourceId>> by_chronon_;
  // by_resource_[r] = sorted chronons at which r is probed.
  std::vector<std::vector<Chronon>> by_resource_;
};

}  // namespace webmon

#endif  // WEBMON_MODEL_SCHEDULE_H_
