#include "model/interval.h"

#include <sstream>

namespace webmon {

std::string ExecutionInterval::ToString() const {
  std::ostringstream os;
  os << "EI{" << id << " r=" << resource << " [" << start << "," << finish
     << "]}";
  return os.str();
}

}  // namespace webmon
