#include "model/schedule.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace webmon {

BudgetVector BudgetVector::Uniform(int64_t c) {
  WEBMON_CHECK_GE(c, 0) << "budgets C_j are probe capacities";
  BudgetVector b;
  b.uniform_ = c;
  return b;
}

BudgetVector BudgetVector::PerChronon(std::vector<int64_t> budgets) {
  BudgetVector b;
  b.per_chronon_ = std::move(budgets);
  for (size_t j = 0; j < b.per_chronon_.size(); ++j) {
    WEBMON_CHECK_GE(b.per_chronon_[j], 0)
        << "budgets C_j are probe capacities (entry " << j << ")";
  }
  // Ensure non-empty so is_uniform() is unambiguous.
  if (b.per_chronon_.empty()) b.per_chronon_.push_back(0);
  return b;
}

int64_t BudgetVector::At(Chronon t) const {
  if (t < 0) return 0;
  if (per_chronon_.empty()) return uniform_;
  if (static_cast<size_t>(t) >= per_chronon_.size()) return 0;
  return per_chronon_[static_cast<size_t>(t)];
}

int64_t BudgetVector::Max(Chronon k) const {
  if (per_chronon_.empty()) return uniform_;
  int64_t best = 0;
  const size_t limit =
      std::min(per_chronon_.size(), static_cast<size_t>(std::max<Chronon>(k, 0)));
  for (size_t j = 0; j < limit; ++j) best = std::max(best, per_chronon_[j]);
  return best;
}

Schedule::Schedule(uint32_t num_resources, Chronon num_chronons)
    : num_resources_(num_resources),
      num_chronons_(num_chronons),
      by_chronon_(static_cast<size_t>(std::max<Chronon>(num_chronons, 0))),
      by_resource_(num_resources) {}

Status Schedule::AddProbe(ResourceId resource, Chronon t) {
  if (resource >= num_resources_) {
    return Status::OutOfRange("probe resource out of range");
  }
  if (t < 0 || t >= num_chronons_) {
    return Status::OutOfRange("probe chronon out of range");
  }
  auto& probes = by_resource_[resource];
  auto it = std::lower_bound(probes.begin(), probes.end(), t);
  if (it != probes.end() && *it == t) {
    return Status::AlreadyExists("duplicate probe");
  }
  probes.insert(it, t);
  by_chronon_[static_cast<size_t>(t)].push_back(resource);
  ++total_probes_;
  return Status::OK();
}

bool Schedule::Probed(ResourceId resource, Chronon t) const {
  if (resource >= num_resources_ || t < 0 || t >= num_chronons_) return false;
  const auto& probes = by_resource_[resource];
  return std::binary_search(probes.begin(), probes.end(), t);
}

bool Schedule::ProbedInRange(ResourceId resource, Chronon from,
                             Chronon to) const {
  if (resource >= num_resources_ || from > to) return false;
  const auto& probes = by_resource_[resource];
  auto it = std::lower_bound(probes.begin(), probes.end(), from);
  return it != probes.end() && *it <= to;
}

const std::vector<ResourceId>& Schedule::ProbesAt(Chronon t) const {
  static const std::vector<ResourceId>* const kEmpty =
      new std::vector<ResourceId>();
  if (t < 0 || t >= num_chronons_) return *kEmpty;
  return by_chronon_[static_cast<size_t>(t)];
}

const std::vector<Chronon>& Schedule::ProbesOf(ResourceId resource) const {
  static const std::vector<Chronon>* const kEmpty =
      new std::vector<Chronon>();
  if (resource >= num_resources_) return *kEmpty;
  return by_resource_[resource];
}

Status Schedule::CheckFeasible(const BudgetVector& budget) const {
  for (Chronon t = 0; t < num_chronons_; ++t) {
    const auto used =
        static_cast<int64_t>(by_chronon_[static_cast<size_t>(t)].size());
    if (used > budget.At(t)) {
      std::ostringstream os;
      os << "budget exceeded at chronon " << t << ": used " << used
         << " > allowed " << budget.At(t);
      return Status::FailedPrecondition(os.str());
    }
  }
  return Status::OK();
}

void Schedule::Clear() {
  for (auto& v : by_chronon_) v.clear();
  for (auto& v : by_resource_) v.clear();
  total_probes_ = 0;
}

}  // namespace webmon
