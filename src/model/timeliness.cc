#include "model/timeliness.h"

#include <algorithm>

#include "model/completeness.h"

namespace webmon {

Chronon FirstCaptureChronon(const ExecutionInterval& ei,
                            const Schedule& schedule) {
  const auto& probes = schedule.ProbesOf(ei.resource);
  auto it = std::lower_bound(probes.begin(), probes.end(), ei.start);
  if (it == probes.end() || *it > ei.finish) return kInvalidChronon;
  return *it;
}

TimelinessReport ComputeTimeliness(const ProblemInstance& problem,
                                   const Schedule& schedule) {
  TimelinessReport report;
  int64_t immediate = 0;
  int64_t captured = 0;
  for (const auto& profile : problem.profiles()) {
    for (const auto& cei : profile.ceis) {
      Chronon completion = kInvalidChronon;
      // The CEI completes when its RequiredCaptures()-th EI capture lands;
      // collect per-EI capture chronons and take the needed order
      // statistic.
      std::vector<Chronon> capture_times;
      for (const auto& ei : cei.eis) {
        const Chronon at = FirstCaptureChronon(ei, schedule);
        if (at == kInvalidChronon) continue;
        capture_times.push_back(at);
        report.ei_capture_delay.Add(static_cast<double>(at - ei.start));
        ++captured;
        if (at == ei.start) ++immediate;
      }
      const size_t needed = cei.RequiredCaptures();
      if (capture_times.size() >= needed && needed > 0) {
        std::sort(capture_times.begin(), capture_times.end());
        completion = capture_times[needed - 1];
        report.cei_completion_delay.Add(
            static_cast<double>(completion - cei.EarliestStart()));
      }
    }
  }
  report.immediate_fraction =
      captured == 0 ? 0.0
                    : static_cast<double>(immediate) /
                          static_cast<double>(captured);
  return report;
}

}  // namespace webmon
