// Capture indicators and the gained-completeness objective
// (paper Section III-B/C, Eq. 1).

#ifndef WEBMON_MODEL_COMPLETENESS_H_
#define WEBMON_MODEL_COMPLETENESS_H_

#include <cstdint>

#include "model/cei.h"
#include "model/problem.h"
#include "model/schedule.h"

namespace webmon {

/// Indicator II(I, S): 1 iff schedule S probes I's resource at some chronon
/// inside [I.start, I.finish].
bool EiCaptured(const ExecutionInterval& ei, const Schedule& schedule);

/// Indicator II(eta, S): 1 iff at least RequiredCaptures() of the CEI's EIs
/// are captured — with the paper's baseline AND semantics (required == 0)
/// this is prod_{I in eta} II(I, S).
bool CeiCaptured(const Cei& cei, const Schedule& schedule);

/// Number of CEIs in `problem` captured by `schedule` (numerator of Eq. 1).
int64_t CapturedCeiCount(const ProblemInstance& problem,
                         const Schedule& schedule);

/// Number of individual EIs captured; used for the "single EI" upper bound of
/// Figure 10 (completeness measured as if rank(P) = 1).
int64_t CapturedEiCount(const ProblemInstance& problem,
                        const Schedule& schedule);

/// Gained completeness gC(P, T, S) per Eq. 1: captured CEIs divided by total
/// CEIs. Returns 0 when the instance has no CEIs.
double GainedCompleteness(const ProblemInstance& problem,
                          const Schedule& schedule);

/// EI-level completeness: captured EIs divided by total EIs. This is the
/// worst-case upper bound on optimal CEI completeness used as the Figure 10
/// denominator.
double EiCompleteness(const ProblemInstance& problem,
                      const Schedule& schedule);

/// Utility-weighted completeness (the paper's Section VII extension):
/// sum of weights of captured CEIs over the total weight. Equals
/// GainedCompleteness when every weight is 1.
double WeightedCompleteness(const ProblemInstance& problem,
                            const Schedule& schedule);

}  // namespace webmon

#endif  // WEBMON_MODEL_COMPLETENESS_H_
