// Aggregator of the sharded scheduler tier: merges per-shard event streams
// and scores cross-shard CEIs (docs/SHARDING.md).
//
// The shards schedule independently; the aggregator is where the fleet's
// answer is assembled. It k-way merges the shard streams in the canonical
// (chronon, shard, seq) order and replays the fleet's capture history
// against the global CEI definitions with the same capture-mask rule the
// scheduler's capture sweep uses: content availability on resource r at
// chronon T (a successful probe or a push, the R_ids set) captures every
// EI of every live CEI whose window contains T and whose CEI has arrived —
// which is exactly how AND semantics spanning shards compose, because "all
// EIs captured" does not care which shard probed what. k-of-n CEIs fall
// out of the same mask (popcount >= required).
//
// Cancellation honours the per-shard drain order: within a chronon every
// shard's mailbox drains cancels before probes are issued, so the merge
// applies ALL of a chronon's cancel records before ANY of its
// availability records — a CEI cancelled at T cannot complete at T.
//
// Two audits run inside the merge:
//   - Budget: per chronon, the summed `spend` attempts of all shards must
//     not exceed the GLOBAL budget — the invariant the proportional split
//     (sharded_run.h) guarantees by construction and this re-checks from
//     the streams alone.
//   - AND cross-check: for required == 0 CEIs the mask verdict must agree
//     with the shards' own fragment lifecycle (captured iff every fragment
//     holder emitted `capture`), tying the mask machinery to the
//     schedulers' ground truth.
//
// The result is a pure function of the input streams; SerializeAggregateResult
// pins it to bytes so replay-identity tests can compare whole runs.

#ifndef WEBMON_SHARD_AGGREGATOR_H_
#define WEBMON_SHARD_AGGREGATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "model/schedule.h"
#include "shard/event_stream.h"
#include "shard/partitioner.h"
#include "util/status.h"

namespace webmon {

/// The merged fleet-level outcome.
struct AggregateResult {
  uint32_t num_shards = 0;
  int64_t total_ceis = 0;
  /// CEIs whose capture mask reached RequiredCaptures.
  int64_t ceis_captured = 0;
  /// CEIs cancelled (first cancel record seen) before capturing.
  int64_t ceis_cancelled = 0;
  /// CEIs spanning more than one shard, and the captured subset thereof.
  int64_t cross_shard_ceis = 0;
  int64_t cross_shard_captured = 0;
  /// Stream record tallies.
  int64_t probes = 0;
  int64_t pushes = 0;
  /// Summed spend attempts, and the largest single-chronon fleet spend.
  int64_t total_attempts = 0;
  int64_t max_chronon_spend = 0;
  /// Gained completeness (Eq. 1): ceis_captured / total_ceis.
  double completeness = 0.0;
  /// Weight-normalized completeness (Section VII utilities).
  double weighted_completeness = 0.0;
  /// Global CEI captures in merge order: (chronon, global CEI id).
  std::vector<std::pair<Chronon, CeiId>> captures;
};

/// Deterministic text form of `result` (equal results serialize to equal
/// bytes) — the replay-identity suite's comparison unit.
std::string SerializeAggregateResult(const AggregateResult& result);

/// Merges `streams` (one per shard, any order; identified by their
/// headers) against the global CEI definitions `ceis` under `plan`,
/// returning the fleet outcome. Fails if the streams' headers disagree,
/// a stream fails AuditShardStream, the fleet overspends `global_budget`
/// in any chronon, or the AND cross-check finds the mask and the fragment
/// lifecycles in disagreement.
StatusOr<AggregateResult> AggregateShardStreams(
    const std::vector<ShardStream>& streams,
    const std::vector<ShardCeiSpec>& ceis, const PartitionPlan& plan,
    const BudgetVector& global_budget);

}  // namespace webmon

#endif  // WEBMON_SHARD_AGGREGATOR_H_
