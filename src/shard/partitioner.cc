#include "shard/partitioner.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace webmon {
namespace {

// Path-halving union-find over resource ids.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Union by smaller root id so the representative is deterministic (the
  // component's minimum resource id once all unions are in).
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

uint32_t PartitionPlan::ShardsTouched(const ShardCeiSpec& cei) const {
  // CEIs have a handful of EIs; a linear dedup over the shard ids beats any
  // set machinery and is order-independent.
  uint32_t seen[256];
  uint32_t count = 0;
  for (const auto& [resource, start, finish] : cei.eis) {
    (void)start;
    (void)finish;
    WEBMON_CHECK_LT(resource, num_resources);
    const uint32_t s = shard_of_resource[resource];
    bool found = false;
    for (uint32_t i = 0; i < count; ++i) {
      if (seen[i] == s) {
        found = true;
        break;
      }
    }
    if (!found) {
      if (count < 256) seen[count] = s;
      ++count;
    }
  }
  return count;
}

StatusOr<PartitionPlan> PartitionResources(
    uint32_t num_resources, uint32_t num_shards,
    const std::vector<ShardCeiSpec>& ceis) {
  if (num_resources == 0) {
    return Status::InvalidArgument("partition needs at least one resource");
  }
  if (num_shards < 1 || num_shards > num_resources) {
    return Status::InvalidArgument(
        "num_shards must lie in [1, num_resources]");
  }

  // Pass 1: per-resource EI load and the co-occurrence components.
  std::vector<int64_t> ei_load(num_resources, 0);
  UnionFind uf(num_resources);
  int64_t total_ei_load = 0;
  for (const ShardCeiSpec& cei : ceis) {
    ResourceId first = 0;
    bool have_first = false;
    for (const auto& [resource, start, finish] : cei.eis) {
      (void)start;
      (void)finish;
      if (resource >= num_resources) {
        return Status::OutOfRange("CEI references resource " +
                                  std::to_string(resource) +
                                  " beyond num_resources");
      }
      ++ei_load[resource];
      ++total_ei_load;
      if (!have_first) {
        first = resource;
        have_first = true;
      } else {
        uf.Union(first, resource);
      }
    }
  }

  // Pass 2: materialize the components of loaded resources (idle resources
  // are spread round-robin at the end). Components are discovered in
  // ascending root order via the ascending-r scan, members stay ascending —
  // both deterministic.
  std::vector<uint32_t> comp_of_root(num_resources, ~0u);
  std::vector<int64_t> comp_load;
  std::vector<std::vector<uint32_t>> comp_members;
  for (uint32_t r = 0; r < num_resources; ++r) {
    if (ei_load[r] == 0) continue;
    const uint32_t root = uf.Find(r);
    uint32_t c = comp_of_root[root];
    if (c == ~0u) {
      c = static_cast<uint32_t>(comp_load.size());
      comp_of_root[root] = c;
      comp_load.push_back(0);
      comp_members.emplace_back();
    }
    comp_load[c] += ei_load[r];
    comp_members[c].push_back(r);
  }

  PartitionPlan plan;
  plan.num_shards = num_shards;
  plan.num_resources = num_resources;
  plan.shard_of_resource.assign(num_resources, 0);
  plan.local_id.assign(num_resources, 0);
  plan.stats.total_ceis = static_cast<int64_t>(ceis.size());
  plan.stats.components = static_cast<int64_t>(comp_load.size());
  plan.stats.eis_per_shard.assign(num_shards, 0);
  plan.stats.resources_per_shard.assign(num_shards, 0);

  // Pass 3: place components, heaviest first (ties by smaller minimum
  // member id, i.e. first member), onto the least-loaded shard (ties by
  // lower shard id). A component heavier than the balanced per-shard load
  // cannot be co-located without starving other shards, so it is split:
  // members are placed one resource at a time by the same greedy rule —
  // the only source of cross-shard CEIs for clustered workloads.
  std::vector<uint32_t> order(comp_load.size());
  std::iota(order.begin(), order.end(), 0u);
  // total-order: ties on load fall through to the component's first member
  // id, unique per component (members are disjoint).
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (comp_load[a] != comp_load[b]) return comp_load[a] > comp_load[b];
    return comp_members[a].front() < comp_members[b].front();
  });

  std::vector<int64_t>& shard_load = plan.stats.eis_per_shard;
  auto least_loaded = [&]() {
    uint32_t best = 0;
    for (uint32_t s = 1; s < num_shards; ++s) {
      if (shard_load[s] < shard_load[best]) best = s;
    }
    return best;
  };
  // ceil(total / num_shards): the balanced load one shard may carry.
  const int64_t balanced =
      (total_ei_load + static_cast<int64_t>(num_shards) - 1) /
      static_cast<int64_t>(num_shards);

  std::vector<uint32_t> split_scratch;
  for (const uint32_t c : order) {
    if (num_shards == 1 || comp_load[c] <= balanced) {
      const uint32_t shard = least_loaded();
      shard_load[shard] += comp_load[c];
      for (const uint32_t r : comp_members[c]) {
        plan.shard_of_resource[r] = shard;
      }
      continue;
    }
    ++plan.stats.split_components;
    split_scratch = comp_members[c];
    // Heaviest member first (ties by id) so the greedy split balances.
    // total-order: load ties fall through to the unique resource id.
    std::sort(split_scratch.begin(), split_scratch.end(),
              [&](uint32_t a, uint32_t b) {
                if (ei_load[a] != ei_load[b]) return ei_load[a] > ei_load[b];
                return a < b;
              });
    for (const uint32_t r : split_scratch) {
      const uint32_t shard = least_loaded();
      shard_load[shard] += ei_load[r];
      plan.shard_of_resource[r] = shard;
    }
  }

  // Idle resources: round-robin by id for resource-count balance.
  uint32_t rr_next = 0;
  for (uint32_t r = 0; r < num_resources; ++r) {
    if (ei_load[r] != 0) continue;
    plan.shard_of_resource[r] = rr_next;
    rr_next = (rr_next + 1) % num_shards;
  }

  // Pass 4: dense local renumbering (ascending global id per shard) and the
  // remaining stats.
  plan.resources_of_shard.assign(num_shards, {});
  for (uint32_t r = 0; r < num_resources; ++r) {
    const uint32_t s = plan.shard_of_resource[r];
    plan.local_id[r] =
        static_cast<uint32_t>(plan.resources_of_shard[s].size());
    plan.resources_of_shard[s].push_back(r);
    ++plan.stats.resources_per_shard[s];
  }
  for (const ShardCeiSpec& cei : ceis) {
    if (plan.ShardsTouched(cei) > 1) ++plan.stats.cross_shard_ceis;
  }
  return plan;
}

}  // namespace webmon
