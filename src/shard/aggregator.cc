#include "shard/aggregator.h"

#include <cinttypes>
#include <cstdio>
#include <limits>

#include "util/check.h"
#include "util/id_map.h"

namespace webmon {
namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

std::string SerializeAggregateResult(const AggregateResult& result) {
  std::string out = "webmon-aggregate 1\nshards ";
  AppendU64(&out, result.num_shards);
  out += "\nceis ";
  AppendI64(&out, result.total_ceis);
  out += " captured ";
  AppendI64(&out, result.ceis_captured);
  out += " cancelled ";
  AppendI64(&out, result.ceis_cancelled);
  out += "\ncross ";
  AppendI64(&out, result.cross_shard_ceis);
  out += " cross-captured ";
  AppendI64(&out, result.cross_shard_captured);
  out += "\nprobes ";
  AppendI64(&out, result.probes);
  out += " pushes ";
  AppendI64(&out, result.pushes);
  out += " attempts ";
  AppendI64(&out, result.total_attempts);
  out += " max-spend ";
  AppendI64(&out, result.max_chronon_spend);
  out += "\ncompleteness ";
  AppendDouble(&out, result.completeness);
  out += " weighted ";
  AppendDouble(&out, result.weighted_completeness);
  out += '\n';
  for (const auto& [chronon, cei] : result.captures) {
    out += "capture ";
    AppendI64(&out, chronon);
    out += ' ';
    AppendU64(&out, cei);
    out += '\n';
  }
  return out;
}

StatusOr<AggregateResult> AggregateShardStreams(
    const std::vector<ShardStream>& streams,
    const std::vector<ShardCeiSpec>& ceis, const PartitionPlan& plan,
    const BudgetVector& global_budget) {
  const uint32_t num_shards = plan.num_shards;
  if (streams.size() != num_shards) {
    return Status::InvalidArgument(
        "expected one stream per shard (" + std::to_string(num_shards) +
        "), got " + std::to_string(streams.size()));
  }
  // Accept streams in any order; index them by shard id and check headers.
  std::vector<const ShardStream*> by_shard(num_shards, nullptr);
  Chronon horizon = -1;
  for (const ShardStream& stream : streams) {
    WEBMON_RETURN_IF_ERROR(AuditShardStream(stream));
    if (stream.num_shards != num_shards ||
        stream.num_resources != plan.num_resources) {
      return Status::InvalidArgument(
          "stream header disagrees with the partition plan");
    }
    if (horizon < 0) horizon = stream.horizon;
    if (stream.horizon != horizon) {
      return Status::InvalidArgument("streams disagree on the horizon");
    }
    if (by_shard[stream.shard_id] != nullptr) {
      return Status::InvalidArgument("two streams claim shard " +
                                     std::to_string(stream.shard_id));
    }
    by_shard[stream.shard_id] = &stream;
  }

  // --- Global CEI tables: flat EI columns, the per-CEI capture mask, and
  // the per-resource CSR the availability sweep walks.
  const size_t num_ceis = ceis.size();
  std::vector<size_t> ei_offset(num_ceis + 1, 0);
  for (size_t i = 0; i < num_ceis; ++i) {
    ei_offset[i + 1] = ei_offset[i] + ceis[i].eis.size();
  }
  const size_t num_eis = ei_offset[num_ceis];
  std::vector<ResourceId> ei_resource(num_eis);
  std::vector<Chronon> ei_start(num_eis), ei_finish(num_eis);
  std::vector<uint32_t> ei_cei(num_eis);
  std::vector<size_t> required(num_ceis);
  std::vector<uint32_t> fragments_expected(num_ceis);
  std::vector<uint8_t> cross(num_ceis);
  FlatIdMap<uint32_t> cei_of_id;
  cei_of_id.Reserve(num_ceis);
  for (size_t i = 0; i < num_ceis; ++i) {
    const ShardCeiSpec& cei = ceis[i];
    if (cei.eis.empty()) {
      return Status::InvalidArgument("CEI " + std::to_string(cei.id) +
                                     " has no EIs");
    }
    size_t e = ei_offset[i];
    for (const auto& [resource, start, finish] : cei.eis) {
      if (resource >= plan.num_resources) {
        return Status::OutOfRange("CEI window beyond the global space");
      }
      ei_resource[e] = resource;
      ei_start[e] = start;
      ei_finish[e] = finish;
      ei_cei[e] = static_cast<uint32_t>(i);
      ++e;
    }
    required[i] =
        cei.required == 0 ? cei.eis.size() : static_cast<size_t>(cei.required);
    const uint32_t touched = plan.ShardsTouched(cei);
    fragments_expected[i] = touched;
    cross[i] = touched > 1 ? 1 : 0;
    cei_of_id.Insert(cei.id, static_cast<uint32_t>(i));
  }
  // Counting-sort CSR: EIs of each resource in flat (CEI, window) order.
  std::vector<size_t> res_offset(static_cast<size_t>(plan.num_resources) + 1,
                                 0);
  for (size_t e = 0; e < num_eis; ++e) ++res_offset[ei_resource[e] + 1];
  for (size_t r = 1; r <= plan.num_resources; ++r) {
    res_offset[r] += res_offset[r - 1];
  }
  std::vector<uint32_t> res_eis(num_eis);
  {
    std::vector<size_t> cursor = res_offset;
    for (size_t e = 0; e < num_eis; ++e) {
      res_eis[cursor[ei_resource[e]]++] = static_cast<uint32_t>(e);
    }
  }

  // Per-CEI merge state.
  enum : uint8_t { kLive = 0, kCaptured = 1, kCancelled = 2 };
  std::vector<uint8_t> ei_captured(num_eis, 0);
  std::vector<size_t> captured_count(num_ceis, 0);
  std::vector<uint8_t> terminal(num_ceis, kLive);
  std::vector<uint32_t> fragments_captured(num_ceis, 0);

  AggregateResult result;
  result.num_shards = num_shards;
  result.total_ceis = static_cast<int64_t>(num_ceis);
  for (size_t i = 0; i < num_ceis; ++i) {
    if (cross[i]) ++result.cross_shard_ceis;
  }

  auto find_cei = [&](CeiId id) -> const uint32_t* {
    return cei_of_id.Find(id);
  };
  auto available = [&](ResourceId r, Chronon t) {
    for (size_t k = res_offset[r]; k < res_offset[r + 1]; ++k) {
      const uint32_t e = res_eis[k];
      const uint32_t c = ei_cei[e];
      if (terminal[c] != kLive || ei_captured[e]) continue;
      if (t < ceis[c].arrival || t < ei_start[e] || t > ei_finish[e]) {
        continue;
      }
      ei_captured[e] = 1;
      ++captured_count[c];
      if (captured_count[c] >= required[c]) {
        terminal[c] = kCaptured;
        ++result.ceis_captured;
        if (cross[c]) ++result.cross_shard_captured;
        result.captures.emplace_back(t, ceis[c].id);
      }
    }
  };

  // --- The (chronon, shard, seq) merge. Event-driven: jump to the next
  // chronon any stream has records at, then sweep that chronon's records
  // shard by shard — cancels first (within a tick every shard drains
  // cancels before issuing probes, so the canonical serial order must
  // too), then the availability / lifecycle / spend records.
  std::vector<size_t> cursor(num_shards, 0);
  constexpr Chronon kDone = std::numeric_limits<Chronon>::max();
  for (;;) {
    Chronon t = kDone;
    for (uint32_t s = 0; s < num_shards; ++s) {
      const auto& events = by_shard[s]->events;
      if (cursor[s] < events.size()) {
        t = std::min(t, events[cursor[s]].chronon);
      }
    }
    if (t == kDone) break;
    // Phase 1: this chronon's cancels, in (shard, seq) order.
    for (uint32_t s = 0; s < num_shards; ++s) {
      const auto& events = by_shard[s]->events;
      for (size_t k = cursor[s];
           k < events.size() && events[k].chronon == t; ++k) {
        if (events[k].kind != ShardEventKind::kCancel) continue;
        const uint32_t* c = find_cei(events[k].cei);
        if (c == nullptr) {
          return Status::InvalidArgument(
              "stream cancels unknown CEI " + std::to_string(events[k].cei));
        }
        if (terminal[*c] == kLive) {
          terminal[*c] = kCancelled;
          ++result.ceis_cancelled;
        }
      }
    }
    // Phase 2: availability, fragment lifecycle, and spend, in
    // (shard, seq) order.
    int64_t spend = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
      const auto& events = by_shard[s]->events;
      size_t k = cursor[s];
      for (; k < events.size() && events[k].chronon == t; ++k) {
        const ShardEvent& event = events[k];
        switch (event.kind) {
          case ShardEventKind::kProbe:
            ++result.probes;
            available(event.resource, t);
            break;
          case ShardEventKind::kPush:
            ++result.pushes;
            available(event.resource, t);
            break;
          case ShardEventKind::kCapture: {
            const uint32_t* c = find_cei(event.cei);
            if (c == nullptr) {
              return Status::InvalidArgument(
                  "stream captures unknown CEI " +
                  std::to_string(event.cei));
            }
            ++fragments_captured[*c];
            break;
          }
          case ShardEventKind::kExpire:
          case ShardEventKind::kCancel:
            break;  // expiries are informational; cancels ran in phase 1
          case ShardEventKind::kSpend:
            spend += event.attempts;
            result.total_attempts += event.attempts;
            break;
        }
      }
      cursor[s] = k;
    }
    // Budget audit: the fleet's summed attempts never exceed the GLOBAL
    // per-chronon budget (failed attempts included — they spent budget).
    if (spend > global_budget.At(t)) {
      return Status::FailedPrecondition(
          "fleet spent " + std::to_string(spend) + " attempts at chronon " +
          std::to_string(t) + ", over the global budget of " +
          std::to_string(global_budget.At(t)));
    }
    result.max_chronon_spend = std::max(result.max_chronon_spend, spend);
  }

  // --- AND cross-check: the mask verdict must match the shards' own
  // fragment lifecycle for every AND CEI (see header).
  for (size_t i = 0; i < num_ceis; ++i) {
    if (ceis[i].required != 0) continue;
    const bool mask_captured = terminal[i] == kCaptured;
    const bool fragments_all = fragments_expected[i] > 0 &&
                               fragments_captured[i] == fragments_expected[i];
    if (mask_captured != fragments_all) {
      return Status::Internal(
          "AND cross-check failed for CEI " + std::to_string(ceis[i].id) +
          ": mask says " + (mask_captured ? "captured" : "uncaptured") +
          " but " + std::to_string(fragments_captured[i]) + "/" +
          std::to_string(fragments_expected[i]) + " fragments captured");
    }
  }

  if (num_ceis > 0) {
    result.completeness = static_cast<double>(result.ceis_captured) /
                          static_cast<double>(num_ceis);
    double total_weight = 0.0;
    double captured_weight = 0.0;
    for (size_t i = 0; i < num_ceis; ++i) {
      total_weight += ceis[i].weight;
      if (terminal[i] == kCaptured) captured_weight += ceis[i].weight;
    }
    if (total_weight > 0.0) {
      result.weighted_completeness = captured_weight / total_weight;
    }
  }
  return result;
}

}  // namespace webmon
