// Per-shard runtime of the sharded scheduler tier (docs/SHARDING.md).
//
// A ShardRuntime wraps one Proxy (and therefore one OnlineScheduler +
// epoch-stamped mailbox) over the shard's owned slice of the global
// resource space, renumbered to dense local ids so per-resource state is
// sized to the shard, not the fleet. It ingests GLOBAL traffic — CEI
// submissions, server pushes, client cancels — keeps only what the shard
// owns (the CEI's local fragment: its EIs on owned resources), and emits
// the serialized shard -> aggregator event stream (shard/event_stream.h)
// as it ticks.
//
// Fragments keep the global CEI's weight; `required` maps to
// min(required, |local EIs|) for k-of-n CEIs and stays 0 (AND over the
// local EIs) for AND CEIs, so the local scheduler's priorities approximate
// the global need. Authoritative cross-shard scoring is the aggregator's
// job — it re-derives captures from the probe/push records, so fragment
// priorities only affect WHICH probes are issued, never how they are
// scored.
//
// Determinism: the runtime adds no ordering of its own. Within a chronon
// the stream records pushes (ingestion order), probes (issue order),
// fragment captures / expiries / cancels (callback firing order), then the
// spend record — every one a deterministic function of the shard's inputs,
// because the wrapped Proxy is (docs/CONCURRENCY.md). Feed the same
// arrival sequence at the same chronons and the stream reproduces byte for
// byte at any SchedulerOptions::num_threads (the replay-identity suite).

#ifndef WEBMON_SHARD_SHARD_RUNTIME_H_
#define WEBMON_SHARD_SHARD_RUNTIME_H_

#include <memory>
#include <vector>

#include "online/proxy.h"
#include "shard/event_stream.h"
#include "shard/partitioner.h"
#include "util/id_map.h"

namespace webmon {

/// One scheduler shard: a local Proxy over the shard's owned resources plus
/// the global-id translation and stream emission around it. Single-threaded
/// driver API (the fleet driver runs whole shards concurrently instead —
/// shard state is never shared).
class ShardRuntime {
 public:
  /// `plan` must outlive the runtime. `budget` is this shard's slice of the
  /// global budget (shard/sharded_run.h SplitShardBudgets).
  ShardRuntime(const PartitionPlan& plan, uint32_t shard_id, Chronon horizon,
               BudgetVector budget, std::unique_ptr<Policy> policy,
               SchedulerOptions options = {});

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  /// Offers a global CEI to this shard: its EIs on owned resources become
  /// the shard's local fragment, submitted to the proxy at the current
  /// chronon. A CEI with no owned EIs is not an error — the shard simply
  /// takes no part in it. A fragment the proxy rejects (e.g. every owned
  /// window already closed) is counted in fragments_rejected() and
  /// scheduled nowhere.
  Status SubmitFragment(const ShardCeiSpec& cei);

  /// Delivers a server push of a GLOBAL resource this shard owns.
  Status Push(ResourceId global_resource);

  /// Cancels the shard's fragment of global CEI `global_id`. A CEI this
  /// shard holds no fragment of is a no-op (the fleet driver broadcasts
  /// cancels only to fragment holders, but replay paths may not).
  Status Cancel(CeiId global_id);

  /// Executes the current chronon: ticks the proxy and appends the
  /// chronon's stream records. Returns the GLOBAL ids of the resources
  /// probed.
  StatusOr<std::vector<ResourceId>> Tick();

  /// The chronon the next Tick() executes.
  Chronon now() const { return proxy_.now(); }
  bool Done() const { return proxy_.Done(); }

  /// The emitted event stream so far.
  const ShardStream& stream() const { return stream_; }
  /// The wrapped proxy (its arrival log is the shard's replay record, in
  /// LOCAL resource ids).
  const Proxy& proxy() const { return proxy_; }
  uint32_t shard_id() const { return shard_id_; }
  /// Owned-resource count (the local proxy's resource-space size).
  uint32_t num_local_resources() const {
    return static_cast<uint32_t>(
        plan_->resources_of_shard[shard_id_].size());
  }
  int64_t fragments_submitted() const { return fragments_submitted_; }
  int64_t fragments_rejected() const { return fragments_rejected_; }

 private:
  void Emit(ShardEventKind kind, Chronon chronon, ResourceId resource,
            CeiId cei, int64_t attempts);

  const PartitionPlan* plan_;
  uint32_t shard_id_;
  Proxy proxy_;
  ShardStream stream_;
  // Local (dense proxy-assigned) CEI id -> global CEI id, in submit order.
  std::vector<CeiId> global_of_local_;
  // Global CEI id -> local id, for cancel routing.
  FlatIdMap<uint32_t> local_of_global_;
  // Pushes accepted since the last Tick (global ids, ingestion order).
  std::vector<ResourceId> pending_pushes_;
  // Lifecycle callback buffers (local ids, firing order), drained per Tick.
  std::vector<CeiId> captured_buffer_;
  std::vector<CeiId> expired_buffer_;
  std::vector<CeiId> cancelled_buffer_;
  // Submit scratch: the fragment's EIs in local resource ids.
  std::vector<std::tuple<ResourceId, Chronon, Chronon>> local_eis_scratch_;
  std::vector<ResourceId> probed_global_scratch_;
  int64_t last_probes_issued_ = 0;
  int64_t fragments_submitted_ = 0;
  int64_t fragments_rejected_ = 0;
};

}  // namespace webmon

#endif  // WEBMON_SHARD_SHARD_RUNTIME_H_
