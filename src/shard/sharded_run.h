// Fleet driver of the sharded scheduler tier (docs/SHARDING.md).
//
// RunSharded executes one epoch over a fleet of ShardRuntimes: partition
// the resource space (shard/partitioner.h), split the global probe budget
// proportionally across shards (SplitShardBudgets), feed every shard the
// workload's chronon-stamped arrivals / pushes / cancels in lockstep with
// its own clock, then merge the emitted streams through the aggregator
// (shard/aggregator.h), which also audits the budget invariant the split
// guarantees by construction: the fleet never spends more than the GLOBAL
// budget in any chronon.
//
// Determinism contract: the merged result is a pure function of the
// (config, workload) pair. Each shard's input sequence is fixed up front,
// so shards can execute serially in shard order or concurrently on a
// thread pool (`parallel_shards`) — no shard reads another's state — and
// the per-shard streams, arrival logs, and the aggregate come out byte-
// identical either way, at any SchedulerOptions::num_threads per shard.
// The replay-identity suite (tests/shard/sharded_run_test.cc) pins this.

#ifndef WEBMON_SHARD_SHARDED_RUN_H_
#define WEBMON_SHARD_SHARDED_RUN_H_

#include <string>
#include <utility>
#include <vector>

#include "model/schedule.h"
#include "online/online_scheduler.h"
#include "shard/aggregator.h"
#include "shard/event_stream.h"
#include "shard/partitioner.h"
#include "util/status.h"

namespace webmon {

/// Chronon-stamped fleet input. CEIs carry their arrival chronon in
/// ShardCeiSpec::arrival; pushes and cancels are (chronon, target) pairs.
/// All three sequences must be sorted by chronon (stable order within a
/// chronon is the vector order); RunSharded validates this.
struct ShardedWorkload {
  std::vector<ShardCeiSpec> ceis;
  std::vector<std::pair<Chronon, ResourceId>> pushes;
  std::vector<std::pair<Chronon, CeiId>> cancels;
};

struct ShardedRunConfig {
  uint32_t num_resources = 0;
  uint32_t num_shards = 1;
  Chronon horizon = 0;
  /// The GLOBAL per-chronon probe budget, split across shards.
  BudgetVector global_budget = BudgetVector::Uniform(0);
  /// Policy instantiated per shard (policy/policy_factory.h).
  std::string policy = "s-edf";
  uint64_t policy_seed = 42;
  /// Per-shard scheduler options (num_threads is threads WITHIN a shard).
  SchedulerOptions scheduler_options;
  /// Run shards concurrently on a thread pool instead of serially. The
  /// result is identical either way (see the determinism contract above).
  bool parallel_shards = false;
};

struct ShardedRunResult {
  PartitionStats partition;
  AggregateResult aggregate;
  /// Per-shard emitted streams, indexed by shard id.
  std::vector<ShardStream> streams;
  /// Per-shard arrival logs (shard/event_stream.h companions: the proxy-
  /// level replay record, serialized with SerializeArrivalLog and replayable
  /// with ReplayArrivalLog), indexed by shard id.
  std::vector<std::string> arrival_logs;
  /// Per-shard budget slices actually used, indexed by shard id.
  std::vector<int64_t> shard_budget_max;
  int64_t fragments_submitted = 0;
  int64_t fragments_rejected = 0;
};

/// Splits `global` across the plan's shards proportionally to owned
/// resource count, by largest remainder (ties to the lower shard id), so
/// for every chronon t: sum_s split[s].At(t) == global.At(t). Uniform
/// budgets split to uniform budgets; per-chronon budgets split chronon by
/// chronon over [0, horizon).
StatusOr<std::vector<BudgetVector>> SplitShardBudgets(
    const BudgetVector& global, const PartitionPlan& plan, Chronon horizon);

/// Runs one epoch of `workload` under `config`. See the file comment for
/// the execution model and determinism contract.
StatusOr<ShardedRunResult> RunSharded(const ShardedRunConfig& config,
                                      const ShardedWorkload& workload);

}  // namespace webmon

#endif  // WEBMON_SHARD_SHARDED_RUN_H_
