#include "shard/sharded_run.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "online/arrival_log.h"
#include "policy/policy_factory.h"
#include "shard/shard_runtime.h"
#include "util/thread_pool.h"

namespace webmon {
namespace {

// One largest-remainder split of a single chronon's budget `value` over
// `weights` (owned-resource counts). shares sum to exactly `value`; ties
// on the fractional part go to the lower shard id so the split is a pure
// function of (value, weights).
void SplitValue(int64_t value, const std::vector<int64_t>& weights,
                int64_t total_weight, std::vector<int64_t>* shares,
                std::vector<uint32_t>* order_scratch) {
  const size_t n = weights.size();
  shares->assign(n, 0);
  if (value <= 0) return;
  int64_t assigned = 0;
  for (size_t s = 0; s < n; ++s) {
    (*shares)[s] = value * weights[s] / total_weight;
    assigned += (*shares)[s];
  }
  int64_t leftover = value - assigned;
  if (leftover == 0) return;
  order_scratch->resize(n);
  for (size_t s = 0; s < n; ++s) (*order_scratch)[s] = static_cast<uint32_t>(s);
  // total-order: remainder ties fall through to the unique shard index
  // (largest-remainder, ties to the lower shard id).
  std::sort(order_scratch->begin(), order_scratch->end(),
            [&](uint32_t a, uint32_t b) {
              const int64_t ra = value * weights[a] % total_weight;
              const int64_t rb = value * weights[b] % total_weight;
              if (ra != rb) return ra > rb;
              return a < b;
            });
  for (size_t k = 0; k < n && leftover > 0; ++k, --leftover) {
    ++(*shares)[(*order_scratch)[k]];
  }
}

// Runs shard `shard_id` start to finish against the fleet workload. The
// runtime filters ownership itself for CEIs; pushes are routed here (a
// push to a non-owner is a driver bug the runtime rejects) and cancels are
// broadcast (non-holders no-op).
Status RunOneShard(ShardRuntime* runtime, const PartitionPlan& plan,
                   uint32_t shard_id, const ShardedWorkload& workload) {
  size_t next_cei = 0, next_push = 0, next_cancel = 0;
  while (!runtime->Done()) {
    const Chronon t = runtime->now();
    for (; next_cei < workload.ceis.size() &&
           workload.ceis[next_cei].arrival == t;
         ++next_cei) {
      WEBMON_RETURN_IF_ERROR(
          runtime->SubmitFragment(workload.ceis[next_cei]));
    }
    for (; next_push < workload.pushes.size() &&
           workload.pushes[next_push].first == t;
         ++next_push) {
      const ResourceId resource = workload.pushes[next_push].second;
      if (plan.shard_of_resource[resource] != shard_id) continue;
      WEBMON_RETURN_IF_ERROR(runtime->Push(resource));
    }
    for (; next_cancel < workload.cancels.size() &&
           workload.cancels[next_cancel].first == t;
         ++next_cancel) {
      WEBMON_RETURN_IF_ERROR(
          runtime->Cancel(workload.cancels[next_cancel].second));
    }
    WEBMON_RETURN_IF_ERROR(runtime->Tick().status());
  }
  return Status::OK();
}

template <typename T, typename ChrononOf>
Status CheckStamped(const std::vector<T>& items, Chronon horizon,
                    const char* what, const ChrononOf& chronon_of) {
  Chronon prev = 0;
  for (const T& item : items) {
    const Chronon t = chronon_of(item);
    if (t < 0 || t >= horizon) {
      return Status::OutOfRange(std::string(what) +
                                " stamped outside the epoch at chronon " +
                                std::to_string(t));
    }
    if (t < prev) {
      return Status::InvalidArgument(std::string(what) +
                                     " sequence is not sorted by chronon");
    }
    prev = t;
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<BudgetVector>> SplitShardBudgets(
    const BudgetVector& global, const PartitionPlan& plan, Chronon horizon) {
  if (horizon <= 0) {
    return Status::InvalidArgument("horizon must be positive");
  }
  std::vector<int64_t> weights(plan.num_shards, 0);
  for (uint32_t s = 0; s < plan.num_shards; ++s) {
    weights[s] = static_cast<int64_t>(plan.resources_of_shard[s].size());
  }
  const int64_t total_weight =
      std::accumulate(weights.begin(), weights.end(), int64_t{0});
  if (total_weight <= 0) {
    return Status::FailedPrecondition("the plan assigns no resources");
  }
  std::vector<int64_t> shares;
  std::vector<uint32_t> order;
  std::vector<BudgetVector> split;
  split.reserve(plan.num_shards);
  if (global.is_uniform()) {
    SplitValue(global.uniform_value(), weights, total_weight, &shares,
               &order);
    for (uint32_t s = 0; s < plan.num_shards; ++s) {
      split.push_back(BudgetVector::Uniform(shares[s]));
    }
    return split;
  }
  std::vector<std::vector<int64_t>> per_shard(
      plan.num_shards, std::vector<int64_t>(horizon, 0));
  for (Chronon t = 0; t < horizon; ++t) {
    SplitValue(global.At(t), weights, total_weight, &shares, &order);
    for (uint32_t s = 0; s < plan.num_shards; ++s) {
      per_shard[s][t] = shares[s];
    }
  }
  for (uint32_t s = 0; s < plan.num_shards; ++s) {
    split.push_back(BudgetVector::PerChronon(std::move(per_shard[s])));
  }
  return split;
}

StatusOr<ShardedRunResult> RunSharded(const ShardedRunConfig& config,
                                      const ShardedWorkload& workload) {
  if (config.horizon <= 0) {
    return Status::InvalidArgument("horizon must be positive");
  }
  WEBMON_RETURN_IF_ERROR(CheckStamped(
      workload.ceis, config.horizon, "CEI arrival",
      [](const ShardCeiSpec& cei) { return cei.arrival; }));
  WEBMON_RETURN_IF_ERROR(CheckStamped(
      workload.pushes, config.horizon, "push",
      [](const std::pair<Chronon, ResourceId>& p) { return p.first; }));
  WEBMON_RETURN_IF_ERROR(CheckStamped(
      workload.cancels, config.horizon, "cancel",
      [](const std::pair<Chronon, CeiId>& c) { return c.first; }));
  for (const auto& [t, resource] : workload.pushes) {
    if (resource >= config.num_resources) {
      return Status::OutOfRange("push targets resource " +
                                std::to_string(resource) +
                                " beyond the global space");
    }
  }

  WEBMON_ASSIGN_OR_RETURN(
      PartitionPlan plan,
      PartitionResources(config.num_resources, config.num_shards,
                         workload.ceis));
  WEBMON_ASSIGN_OR_RETURN(
      std::vector<BudgetVector> budgets,
      SplitShardBudgets(config.global_budget, plan, config.horizon));

  std::vector<std::unique_ptr<ShardRuntime>> runtimes;
  runtimes.reserve(config.num_shards);
  for (uint32_t s = 0; s < config.num_shards; ++s) {
    WEBMON_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                            MakePolicy(config.policy, config.policy_seed));
    runtimes.push_back(std::make_unique<ShardRuntime>(
        plan, s, config.horizon, std::move(budgets[s]), std::move(policy),
        config.scheduler_options));
  }

  // Shards share nothing and their inputs are fixed, so serial shard order
  // and pool execution produce identical streams (header contract).
  std::vector<Status> shard_status(config.num_shards, Status::OK());
  if (config.parallel_shards && config.num_shards > 1) {
    ThreadPool pool(static_cast<int>(config.num_shards));
    pool.ParallelFor(static_cast<int>(config.num_shards), [&](int s) {
      shard_status[s] =
          RunOneShard(runtimes[s].get(), plan, static_cast<uint32_t>(s),
                      workload);
    });
  } else {
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      shard_status[s] = RunOneShard(runtimes[s].get(), plan, s, workload);
    }
  }
  for (uint32_t s = 0; s < config.num_shards; ++s) {
    if (!shard_status[s].ok()) return shard_status[s];
  }

  ShardedRunResult result;
  result.partition = plan.stats;
  result.streams.reserve(config.num_shards);
  result.arrival_logs.reserve(config.num_shards);
  result.shard_budget_max.reserve(config.num_shards);
  for (uint32_t s = 0; s < config.num_shards; ++s) {
    const ShardRuntime& runtime = *runtimes[s];
    result.streams.push_back(runtime.stream());
    result.arrival_logs.push_back(
        SerializeArrivalLog(runtime.proxy().arrival_log()));
    result.fragments_submitted += runtime.fragments_submitted();
    result.fragments_rejected += runtime.fragments_rejected();
  }
  {
    // Re-derive the split (the budgets were moved into the runtimes).
    WEBMON_ASSIGN_OR_RETURN(
        std::vector<BudgetVector> audit_budgets,
        SplitShardBudgets(config.global_budget, plan, config.horizon));
    for (uint32_t s = 0; s < config.num_shards; ++s) {
      result.shard_budget_max.push_back(
          audit_budgets[s].Max(config.horizon));
    }
  }

  WEBMON_ASSIGN_OR_RETURN(
      result.aggregate,
      AggregateShardStreams(result.streams, workload.ceis, plan,
                            config.global_budget));
  return result;
}

}  // namespace webmon
