// Deterministic profile partitioner for the sharded scheduler tier
// (docs/SHARDING.md).
//
// The fleet topology (ROADMAP "Sharded multi-proxy tier") runs N
// independent OnlineScheduler shards, each owning a disjoint slice of the
// resource space. A CEI whose EIs all land on one shard is scheduled there
// end to end; a CEI spanning shards is split into per-shard fragments whose
// captures the aggregator joins back together (shard/aggregator.h). Since
// cross-shard CEIs cost an aggregation join and lose intra-CEI scheduling
// context, the partitioner's objective is to co-locate resources that
// co-occur in CEIs: it builds the co-occurrence components with a
// union-find, then places whole components onto the least-loaded shard
// (greedy bin packing by EI load). Components too big for one shard are
// split resource-by-resource — the only source of cross-shard CEIs for
// clustered workloads.
//
// Everything here is a pure function of (num_resources, num_shards, ceis):
// no RNG, no iteration over unordered containers, no address-dependent
// tie-breaks — repartitioning an identical spec yields an identical plan
// (the stability property test).

#ifndef WEBMON_SHARD_PARTITIONER_H_
#define WEBMON_SHARD_PARTITIONER_H_

#include <cstdint>
#include <tuple>
#include <vector>

#include "model/types.h"
#include "util/status.h"

namespace webmon {

/// One global CEI as the sharded tier ingests it: the Proxy::Submit payload
/// plus the chronon it arrives at and the global id the fleet assigned.
/// `required` follows Cei::required (0 = AND semantics over all EIs).
struct ShardCeiSpec {
  CeiId id = 0;
  Chronon arrival = 0;
  double weight = 1.0;
  uint32_t required = 0;
  /// (resource, start, finish) windows, in submission order.
  std::vector<std::tuple<ResourceId, Chronon, Chronon>> eis;
};

/// Partition diagnostics (also the bench's per-cell report).
struct PartitionStats {
  int64_t total_ceis = 0;
  /// CEIs whose EIs touch more than one shard (scored by the aggregator).
  int64_t cross_shard_ceis = 0;
  /// Co-occurrence components found by the union-find.
  int64_t components = 0;
  /// Components split across shards because they exceeded the balanced
  /// per-shard load.
  int64_t split_components = 0;
  /// Per-shard EI load (the balance objective).
  std::vector<int64_t> eis_per_shard;
  /// Per-shard owned-resource counts.
  std::vector<int64_t> resources_per_shard;
};

/// The resource -> shard assignment plus the dense local renumbering each
/// shard's proxy runs under.
struct PartitionPlan {
  uint32_t num_shards = 1;
  uint32_t num_resources = 0;
  /// shard_of_resource[r] = owning shard of global resource r.
  std::vector<uint32_t> shard_of_resource;
  /// local_id[r] = r's dense id within its owning shard's proxy.
  std::vector<uint32_t> local_id;
  /// resources_of_shard[s][l] = global id of shard s's local resource l
  /// (ascending in global id, the inverse of local_id).
  std::vector<std::vector<ResourceId>> resources_of_shard;
  PartitionStats stats;

  /// Number of distinct shards the CEI's EIs touch (0 for an empty list).
  uint32_t ShardsTouched(const ShardCeiSpec& cei) const;
};

/// Partitions `num_resources` resources across `num_shards` shards,
/// minimizing cross-shard CEIs (component co-location) under EI-load
/// balance. Resources appearing in no CEI are spread round-robin by id.
/// Deterministic: equal inputs yield equal plans. Fails when `num_shards`
/// is not in [1, num_resources].
StatusOr<PartitionPlan> PartitionResources(
    uint32_t num_resources, uint32_t num_shards,
    const std::vector<ShardCeiSpec>& ceis);

}  // namespace webmon

#endif  // WEBMON_SHARD_PARTITIONER_H_
