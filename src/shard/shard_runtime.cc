#include "shard/shard_runtime.h"

#include <algorithm>

#include "policy/policy.h"
#include "util/check.h"

namespace webmon {

ShardRuntime::ShardRuntime(const PartitionPlan& plan, uint32_t shard_id,
                           Chronon horizon, BudgetVector budget,
                           std::unique_ptr<Policy> policy,
                           SchedulerOptions options)
    : plan_(&plan),
      shard_id_(shard_id),
      proxy_(static_cast<uint32_t>(plan.resources_of_shard.at(shard_id).size()),
             horizon, std::move(budget), std::move(policy), options) {
  WEBMON_CHECK_LT(shard_id, plan.num_shards);
  stream_.shard_id = shard_id;
  stream_.num_shards = plan.num_shards;
  stream_.num_resources = plan.num_resources;
  stream_.horizon = horizon;
  // Lifecycle callbacks fire on the ticking thread inside Tick(); Tick()
  // translates the buffered local ids to global stream records afterwards.
  proxy_.set_on_cei_captured(
      [this](CeiId local) { captured_buffer_.push_back(local); });
  proxy_.set_on_cei_expired(
      [this](CeiId local) { expired_buffer_.push_back(local); });
  proxy_.set_on_cei_cancelled(
      [this](CeiId local) { cancelled_buffer_.push_back(local); });
}

void ShardRuntime::Emit(ShardEventKind kind, Chronon chronon,
                        ResourceId resource, CeiId cei, int64_t attempts) {
  ShardEvent event;
  event.seq = static_cast<uint64_t>(stream_.events.size());
  event.chronon = chronon;
  event.kind = kind;
  event.resource = resource;
  event.cei = cei;
  event.attempts = attempts;
  stream_.events.push_back(event);
}

Status ShardRuntime::SubmitFragment(const ShardCeiSpec& cei) {
  local_eis_scratch_.clear();
  for (const auto& [resource, start, finish] : cei.eis) {
    if (resource >= plan_->num_resources) {
      return Status::OutOfRange("fragment references resource " +
                                std::to_string(resource) +
                                " beyond the global space");
    }
    if (plan_->shard_of_resource[resource] != shard_id_) continue;
    local_eis_scratch_.emplace_back(plan_->local_id[resource], start, finish);
  }
  if (local_eis_scratch_.empty()) return Status::OK();

  // AND CEIs stay AND over the local EIs; k-of-n CEIs keep as much of the
  // subset pressure as the fragment can express. Scoring is the
  // aggregator's job either way (see the header).
  const uint32_t local_required =
      cei.required == 0
          ? 0u
          : std::min(cei.required,
                     static_cast<uint32_t>(local_eis_scratch_.size()));
  StatusOr<CeiId> local =
      proxy_.Submit(local_eis_scratch_, cei.weight, local_required);
  if (!local.ok()) {
    // The proxy validated the fragment away (every owned window closed
    // before the fragment arrived). The CEI proceeds without this shard.
    ++fragments_rejected_;
    return Status::OK();
  }
  ++fragments_submitted_;
  WEBMON_CHECK_EQ(*local, global_of_local_.size());
  global_of_local_.push_back(cei.id);
  local_of_global_.Insert(cei.id, static_cast<uint32_t>(*local));
  return Status::OK();
}

Status ShardRuntime::Push(ResourceId global_resource) {
  if (global_resource >= plan_->num_resources) {
    return Status::OutOfRange("pushed resource beyond the global space");
  }
  if (plan_->shard_of_resource[global_resource] != shard_id_) {
    return Status::InvalidArgument(
        "push routed to a shard that does not own resource " +
        std::to_string(global_resource));
  }
  WEBMON_RETURN_IF_ERROR(proxy_.Push(plan_->local_id[global_resource]));
  pending_pushes_.push_back(global_resource);
  return Status::OK();
}

Status ShardRuntime::Cancel(CeiId global_id) {
  const uint32_t* local = local_of_global_.Find(global_id);
  if (local == nullptr) return Status::OK();  // no fragment here
  Status status = proxy_.Cancel(*local);
  // A second cancel of the same fragment is the mailbox's duplicate
  // rejection; the fleet driver never sends one, but replays of recorded
  // cancel traffic may race a fragment that was rejected at submit.
  if (status.code() == StatusCode::kFailedPrecondition) return Status::OK();
  return status;
}

StatusOr<std::vector<ResourceId>> ShardRuntime::Tick() {
  const Chronon chronon = proxy_.now();
  captured_buffer_.clear();
  expired_buffer_.clear();
  cancelled_buffer_.clear();
  StatusOr<std::vector<ResourceId>> probed = proxy_.Tick();
  if (!probed.ok()) return probed.status();

  const std::vector<ResourceId>& owned =
      plan_->resources_of_shard[shard_id_];
  // Fixed per-chronon record order (see event_stream.h): pushes, probes,
  // fragment lifecycle (captures, expiries, cancels), spend.
  for (const ResourceId global : pending_pushes_) {
    Emit(ShardEventKind::kPush, chronon, global, 0, 0);
  }
  pending_pushes_.clear();
  probed_global_scratch_.clear();
  for (const ResourceId local : *probed) {
    const ResourceId global = owned[local];
    probed_global_scratch_.push_back(global);
    Emit(ShardEventKind::kProbe, chronon, global, 0, 0);
  }
  for (const CeiId local : captured_buffer_) {
    Emit(ShardEventKind::kCapture, chronon, 0, global_of_local_[local], 0);
  }
  for (const CeiId local : expired_buffer_) {
    Emit(ShardEventKind::kExpire, chronon, 0, global_of_local_[local], 0);
  }
  for (const CeiId local : cancelled_buffer_) {
    Emit(ShardEventKind::kCancel, chronon, 0, global_of_local_[local], 0);
  }
  const int64_t attempts = proxy_.stats().probes_issued - last_probes_issued_;
  last_probes_issued_ = proxy_.stats().probes_issued;
  if (attempts > 0) {
    Emit(ShardEventKind::kSpend, chronon, 0, 0, attempts);
  }
  return probed_global_scratch_;
}

}  // namespace webmon
