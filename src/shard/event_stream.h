// Serialized shard -> aggregator event stream (docs/SHARDING.md).
//
// Each shard runtime emits one stream per epoch: the resources whose
// content became available (successful probes and server pushes, the
// scheduler's R_ids set), the lifecycle of the shard's CEI fragments, and a
// per-chronon budget-spend record covering every probe attempt (failed
// attempts included), so the aggregator can both score cross-shard CEIs
// with the capture-mask machinery and audit the global per-chronon budget
// invariant. The framing follows the arrival-log v2 conventions
// (online/arrival_log.h): line-oriented text, one record per line,
// space-separated fields, a pinned header — the golden suite locks the
// exact bytes, so any change here is a format bump.
//
// Format "webmon-shardstream 1":
//
//   webmon-shardstream 1
//   shard <shard_id> <num_shards> <num_resources> <horizon>
//   probe <seq> <chronon> <global_resource>
//   push <seq> <chronon> <global_resource>
//   capture <seq> <chronon> <global_cei>
//   expire <seq> <chronon> <global_cei>
//   cancel <seq> <chronon> <global_cei>
//   spend <seq> <chronon> <attempts>
//
// `seq` is the shard's own monotone record sequence (dense from 0);
// `chronon` never decreases. Resource ids are GLOBAL (the runtime maps its
// proxy's dense local ids back before emitting); capture/expire/cancel name
// the GLOBAL CEI whose local fragment reached that state. `spend` closes a
// chronon in which the shard issued probe attempts: `attempts` counts every
// budget-consuming attempt that chronon, successful or not, which is the
// quantity the aggregator's budget audit sums across shards.
//
// Within one chronon, records are emitted in the fixed category order
// push, probe, capture, expire, cancel, spend — each category in the
// deterministic order the shard's proxy produced it — so the stream is a
// pure function of the shard's arrival log (the replay-identity suite).

#ifndef WEBMON_SHARD_EVENT_STREAM_H_
#define WEBMON_SHARD_EVENT_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/types.h"
#include "util/status.h"

namespace webmon {

/// Record kinds of the shard stream. Serialized: enumerator values are part
/// of the format.
enum class ShardEventKind : uint8_t {
  kProbe = 0,
  kPush = 1,
  kCapture = 2,
  kExpire = 3,
  kCancel = 4,
  kSpend = 5,
};

/// Stable record name as serialized ("probe", "push", ...).
const char* ShardEventKindName(ShardEventKind kind);

/// One shard stream record. Only the fields of the record's kind are
/// meaningful; the others stay zero so equality is structural.
struct ShardEvent {
  uint64_t seq = 0;
  Chronon chronon = 0;
  ShardEventKind kind = ShardEventKind::kProbe;
  /// probe / push payload (global resource id).
  ResourceId resource = 0;
  /// capture / expire / cancel payload (global CEI id).
  CeiId cei = 0;
  /// spend payload: budget-consuming probe attempts this chronon.
  int64_t attempts = 0;

  friend bool operator==(const ShardEvent& a, const ShardEvent& b) {
    return a.seq == b.seq && a.chronon == b.chronon && a.kind == b.kind &&
           a.resource == b.resource && a.cei == b.cei &&
           a.attempts == b.attempts;
  }
  friend bool operator!=(const ShardEvent& a, const ShardEvent& b) {
    return !(a == b);
  }
};

/// One shard's whole-epoch event stream plus its header identity.
struct ShardStream {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  /// GLOBAL resource-space size (all shards share it).
  uint32_t num_resources = 0;
  Chronon horizon = 0;
  std::vector<ShardEvent> events;

  friend bool operator==(const ShardStream& a, const ShardStream& b) {
    return a.shard_id == b.shard_id && a.num_shards == b.num_shards &&
           a.num_resources == b.num_resources && a.horizon == b.horizon &&
           a.events == b.events;
  }
  friend bool operator!=(const ShardStream& a, const ShardStream& b) {
    return !(a == b);
  }
};

/// The version SerializeShardStream writes (and ParseShardStream accepts).
inline constexpr int kShardStreamFormatVersion = 1;

/// Encodes `stream` in the format documented above. Deterministic: equal
/// streams serialize to equal bytes (the golden suite pins them).
std::string SerializeShardStream(const ShardStream& stream);

/// Decodes a serialized stream. Fails on a missing or unknown header, a
/// missing shard line, or a malformed record.
StatusOr<ShardStream> ParseShardStream(const std::string& text);

/// Structural well-formedness independent of any workload: the header is
/// consistent (shard_id < num_shards, horizon > 0), sequence numbers are
/// dense from 0, chronons never decrease and lie in [0, horizon), resources
/// lie in the global space, and spend records carry positive attempt
/// counts with at most one spend per chronon.
Status AuditShardStream(const ShardStream& stream);

}  // namespace webmon

#endif  // WEBMON_SHARD_EVENT_STREAM_H_
