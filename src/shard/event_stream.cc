#include "shard/event_stream.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace webmon {
namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

Status Malformed(size_t line, const std::string& what) {
  return Status::InvalidArgument("shard stream line " + std::to_string(line) +
                                 ": " + what);
}

}  // namespace

const char* ShardEventKindName(ShardEventKind kind) {
  switch (kind) {
    case ShardEventKind::kProbe:
      return "probe";
    case ShardEventKind::kPush:
      return "push";
    case ShardEventKind::kCapture:
      return "capture";
    case ShardEventKind::kExpire:
      return "expire";
    case ShardEventKind::kCancel:
      return "cancel";
    case ShardEventKind::kSpend:
      return "spend";
  }
  return "unknown";
}

std::string SerializeShardStream(const ShardStream& stream) {
  std::string out = "webmon-shardstream 1\nshard ";
  AppendU64(&out, stream.shard_id);
  out += ' ';
  AppendU64(&out, stream.num_shards);
  out += ' ';
  AppendU64(&out, stream.num_resources);
  out += ' ';
  AppendI64(&out, stream.horizon);
  out += '\n';
  for (const ShardEvent& event : stream.events) {
    out += ShardEventKindName(event.kind);
    out += ' ';
    AppendU64(&out, event.seq);
    out += ' ';
    AppendI64(&out, event.chronon);
    out += ' ';
    switch (event.kind) {
      case ShardEventKind::kProbe:
      case ShardEventKind::kPush:
        AppendU64(&out, event.resource);
        break;
      case ShardEventKind::kCapture:
      case ShardEventKind::kExpire:
      case ShardEventKind::kCancel:
        AppendU64(&out, event.cei);
        break;
      case ShardEventKind::kSpend:
        AppendI64(&out, event.attempts);
        break;
    }
    out += '\n';
  }
  return out;
}

StatusOr<ShardStream> ParseShardStream(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("shard stream is empty (missing header)");
  }
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != "webmon-shardstream") {
      return Status::InvalidArgument(
          "shard stream header is not \"webmon-shardstream <version>\"");
    }
    if (version != kShardStreamFormatVersion) {
      return Status::InvalidArgument("unsupported shard stream version " +
                                     std::to_string(version));
    }
  }
  ShardStream stream;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("shard stream is missing the shard line");
  }
  {
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind >> stream.shard_id >> stream.num_shards >>
          stream.num_resources >> stream.horizon) ||
        kind != "shard") {
      return Malformed(2, "expected \"shard <id> <shards> <resources> "
                          "<horizon>\"");
    }
  }

  size_t line_number = 2;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    ShardEvent event;
    bool ok = false;
    if (kind == "probe" || kind == "push") {
      event.kind =
          kind == "probe" ? ShardEventKind::kProbe : ShardEventKind::kPush;
      ok = static_cast<bool>(fields >> event.seq >> event.chronon >>
                             event.resource);
    } else if (kind == "capture" || kind == "expire" || kind == "cancel") {
      event.kind = kind == "capture" ? ShardEventKind::kCapture
                   : kind == "expire" ? ShardEventKind::kExpire
                                      : ShardEventKind::kCancel;
      ok = static_cast<bool>(fields >> event.seq >> event.chronon >>
                             event.cei);
    } else if (kind == "spend") {
      event.kind = ShardEventKind::kSpend;
      ok = static_cast<bool>(fields >> event.seq >> event.chronon >>
                             event.attempts);
    } else {
      return Malformed(line_number, "unknown record kind \"" + kind + "\"");
    }
    if (!ok) {
      return Malformed(line_number, "truncated " + kind + " record");
    }
    std::string trailing;
    if (fields >> trailing) {
      return Malformed(line_number, "trailing fields after the record");
    }
    stream.events.push_back(event);
  }
  return stream;
}

Status AuditShardStream(const ShardStream& stream) {
  if (stream.num_shards < 1 || stream.shard_id >= stream.num_shards) {
    return Status::InvalidArgument("shard id " +
                                   std::to_string(stream.shard_id) +
                                   " outside the declared fleet of " +
                                   std::to_string(stream.num_shards));
  }
  if (stream.horizon <= 0) {
    return Status::InvalidArgument("shard stream horizon must be positive");
  }
  Chronon spend_chronon = -1;
  for (size_t i = 0; i < stream.events.size(); ++i) {
    const ShardEvent& event = stream.events[i];
    const std::string at = "event " + std::to_string(i) + ": ";
    if (event.seq != i) {
      return Status::InvalidArgument(
          at + "sequence numbers must be dense from 0");
    }
    if (i > 0 && event.chronon < stream.events[i - 1].chronon) {
      return Status::InvalidArgument(at + "chronons must not decrease");
    }
    if (event.chronon < 0 || event.chronon >= stream.horizon) {
      return Status::InvalidArgument(at + "chronon outside the epoch");
    }
    switch (event.kind) {
      case ShardEventKind::kProbe:
      case ShardEventKind::kPush:
        if (event.resource >= stream.num_resources) {
          return Status::InvalidArgument(
              at + "resource outside the global space");
        }
        break;
      case ShardEventKind::kCapture:
      case ShardEventKind::kExpire:
      case ShardEventKind::kCancel:
        break;
      case ShardEventKind::kSpend:
        if (event.attempts <= 0) {
          return Status::InvalidArgument(
              at + "spend must carry a positive attempt count");
        }
        if (event.chronon == spend_chronon) {
          return Status::InvalidArgument(
              at + "more than one spend record in a chronon");
        }
        spend_chronon = event.chronon;
        break;
    }
  }
  return Status::OK();
}

}  // namespace webmon
