// AST for the paper's pseudo continuous-query language (Section II).
//
// The paper expresses complex monitoring needs as small SELECT queries:
//
//   q1: SELECT item AS F1 FROM feed(MishBlog)
//       WHEN EVERY 10 MINUTES AS T1 WITHIN T1+2 MINUTES
//   q2: SELECT item AS F2 FROM feed(CNNBreakingNews)
//       WHEN F1 CONTAINS %oil% WITHIN T1+10 MINUTES
//   q3: SELECT item AS F3 FROM feed(StockExchange) WHEN ON PUSH AS T1
//
// The paper explicitly does not fix a language ("we expect the Web 2.0
// environment will generate many tools"); this module implements exactly
// the constructs its examples use, which is enough to run Examples 2 and 3
// verbatim. Time units (MINUTES/SECONDS/CHRONONS) are accepted and all map
// to chronons — the scheduling substrate is unit-agnostic.

#ifndef WEBMON_QUERY_AST_H_
#define WEBMON_QUERY_AST_H_

#include <string>
#include <vector>

#include "model/types.h"
#include "util/status.h"

namespace webmon {

/// What fires a query.
enum class TriggerKind {
  /// WHEN EVERY n [AS Tk] — periodic pull.
  kEvery,
  /// WHEN <alias> CONTAINS %pattern% — fires when a previously selected
  /// stream's new item matches.
  kContent,
  /// WHEN ON PUSH [AS Tk] — fires when the server pushes the content
  /// itself (no probe needed).
  kPush,
  /// WHEN ON NOTIFY [AS Tk] — a pub/sub notification says an update
  /// happened, but the proxy "still has to cross the stream" (Section
  /// III / Figure 4 discussion): a capture need is submitted per
  /// notification.
  kNotify,
};

const char* TriggerKindToString(TriggerKind kind);

/// One parsed query.
struct QuerySpec {
  /// SELECT item AS <alias>.
  std::string alias;
  /// FROM feed(<feed>).
  std::string feed;

  TriggerKind trigger = TriggerKind::kEvery;
  /// kEvery: the period in chronons.
  Chronon period = 0;
  /// kContent: the alias this query depends on, and the %pattern% needle.
  std::string depends_on;
  std::string needle;
  /// kEvery / kPush: the anchor name this trigger defines (AS T1); may be
  /// empty if no dependent query references the trigger time.
  std::string anchor_def;

  /// WITHIN <anchor>+<offset>: capture deadline relative to the anchor.
  /// Empty anchor means no WITHIN clause (the engine applies a default
  /// slack of 0: capture at the trigger chronon).
  std::string within_anchor;
  Chronon within_offset = 0;

  /// Reconstructs a canonical query string (for diagnostics and tests).
  std::string ToString() const;
};

/// Structural validation of a query set: unique aliases, dependencies
/// resolve to EVERY/PUSH queries, WITHIN anchors resolve to the trigger's
/// own or the dependency's anchor, positive periods.
Status ValidateQueries(const std::vector<QuerySpec>& queries);

}  // namespace webmon

#endif  // WEBMON_QUERY_AST_H_
