#include "query/engine.h"

#include <algorithm>

#include "util/string_util.h"

namespace webmon {

QueryEngine::QueryEngine(FeedWorld* world, std::unique_ptr<Policy> policy,
                         uint32_t num_resources, Chronon horizon,
                         BudgetVector budget)
    : world_(world),
      proxy_(std::make_unique<Proxy>(num_resources, horizon,
                                     std::move(budget), std::move(policy))) {}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    std::vector<QuerySpec> queries,
    const std::map<std::string, ResourceId>& feed_ids, FeedWorld* world,
    std::unique_ptr<Policy> policy, Chronon horizon, BudgetVector budget) {
  WEBMON_RETURN_IF_ERROR(ValidateQueries(queries));
  if (world == nullptr) {
    return Status::InvalidArgument("QueryEngine needs a feed world");
  }
  if (policy == nullptr) {
    return Status::InvalidArgument("QueryEngine needs a policy");
  }

  std::unique_ptr<QueryEngine> engine(new QueryEngine(
      world, std::move(policy), world->num_feeds(), horizon,
      std::move(budget)));

  engine->queries_.reserve(queries.size());
  for (auto& spec : queries) {
    auto it = feed_ids.find(spec.feed);
    if (it == feed_ids.end()) {
      return Status::NotFound("query " + spec.alias +
                              " references unmapped feed " + spec.feed);
    }
    if (it->second >= world->num_feeds()) {
      return Status::OutOfRange("feed " + spec.feed +
                                " maps outside the feed world");
    }
    QueryState state;
    state.spec = std::move(spec);
    state.resource = it->second;
    engine->by_alias_.emplace(state.spec.alias, engine->queries_.size());
    engine->queries_.push_back(std::move(state));
  }

  // Wire dependency edges and push subscriptions.
  for (size_t i = 0; i < engine->queries_.size(); ++i) {
    QueryState& state = engine->queries_[i];
    if (state.spec.trigger == TriggerKind::kContent) {
      const size_t root = engine->by_alias_.at(state.spec.depends_on);
      engine->queries_[root].dependents.push_back(i);
    }
    if (state.spec.trigger == TriggerKind::kPush) {
      QueryEngine* raw = engine.get();
      WEBMON_RETURN_IF_ERROR(world->Subscribe(
          state.resource, [raw, i](const FeedItem& item) {
            raw->pending_pushes_.emplace_back(i, item);
          }));
    }
    if (state.spec.trigger == TriggerKind::kNotify) {
      QueryEngine* raw = engine.get();
      // The notification carries no content — only the fact of an update.
      WEBMON_RETURN_IF_ERROR(world->Subscribe(
          state.resource,
          [raw, i](const FeedItem& /*item*/) {
            raw->pending_notifies_.push_back(i);
          }));
    }
  }

  // Capture attribution callbacks.
  QueryEngine* raw = engine.get();
  engine->proxy_->set_on_cei_captured([raw](CeiId id) {
    auto it = raw->need_owners_.find(id);
    if (it == raw->need_owners_.end()) return;
    for (size_t q : it->second) ++raw->queries_[q].stats.needs_captured;
  });
  engine->proxy_->set_on_cei_expired([raw](CeiId id) {
    auto it = raw->need_owners_.find(id);
    if (it == raw->need_owners_.end()) return;
    for (size_t q : it->second) ++raw->queries_[q].stats.needs_expired;
  });
  return engine;
}

Status QueryEngine::FirePeriodic(Chronon now) {
  for (size_t i = 0; i < queries_.size(); ++i) {
    QueryState& state = queries_[i];
    if (state.spec.trigger != TriggerKind::kEvery) continue;
    if (state.next_trigger != now) continue;
    state.next_trigger += state.spec.period;
    state.current_anchor = now;
    ++state.stats.triggers_fired;
    // The probe window: WITHIN <own anchor> + offset, default slack 0.
    const Chronon slack =
        state.spec.within_anchor.empty() ? 0 : state.spec.within_offset;
    auto need = proxy_->Submit({{state.resource, now, now + slack}});
    if (!need.ok()) {
      // A window that no longer fits the epoch is not an error for the
      // engine; the round simply cannot be monitored.
      continue;
    }
    ++state.stats.needs_submitted;
    need_owners_[*need] = {i};
  }
  return Status::OK();
}

Status QueryEngine::SubmitCrossing(size_t root,
                                   const std::vector<size_t>& fired,
                                   Chronon now) {
  if (fired.empty()) return Status::OK();
  QueryState& root_state = queries_[root];
  const Chronon anchor = root_state.current_anchor == kInvalidChronon
                             ? now
                             : root_state.current_anchor;
  std::vector<std::tuple<ResourceId, Chronon, Chronon>> eis;
  eis.reserve(fired.size());
  for (size_t q : fired) {
    const QueryState& dep = queries_[q];
    const Chronon deadline = dep.spec.within_anchor.empty()
                                 ? now
                                 : anchor + dep.spec.within_offset;
    eis.emplace_back(dep.resource, now, std::max(deadline, now));
  }
  auto need = proxy_->Submit(eis);
  if (!need.ok()) return Status::OK();  // window beyond the epoch
  for (size_t q : fired) {
    ++queries_[q].stats.needs_submitted;
    ++queries_[q].stats.triggers_fired;
  }
  need_owners_[*need] = fired;
  root_state.last_fired_anchor = anchor;
  return Status::OK();
}

Status QueryEngine::DeliverPushes(Chronon now) {
  std::vector<std::pair<size_t, FeedItem>> pushes;
  pushes.swap(pending_pushes_);
  for (auto& [qi, item] : pushes) {
    QueryState& state = queries_[qi];
    ++state.stats.triggers_fired;
    ++state.stats.items_delivered;
    // Staleness detection: a gap in the feed's sequence numbers means
    // pushes were lost in flight. The push channel cannot resend, so fall
    // back to a scheduled pull — the missed items may still sit in the
    // feed's buffer. (A lost FINAL push stays invisible until the next
    // push or pull; sequence gaps are the only client-side signal.)
    // last_seen_seq starts at 0 and subscriptions are wired before the
    // world publishes, so a FIRST push with seq > 1 is also a gap.
    if (item.seq > state.last_seen_seq + 1) {
      ++state.stats.push_gaps_detected;
      // The lost items' ids lie strictly between the last item seen and
      // this push; remember the window so the pull's re-delivery survives
      // the max-id dedup below.
      state.recovery_ranges.emplace_back(
          state.seen_any_item ? state.last_seen_item : 0, item.id);
      // The pull must start NEXT chronon: this same push marks the feed
      // pushed at `now`, and a need whose window contains `now` would be
      // captured by the push itself — without any probe ever fetching the
      // lost items from the buffer.
      const Chronon slack =
          state.spec.within_anchor.empty() ? 0 : state.spec.within_offset;
      auto need = proxy_->Submit({{state.resource, now + 1, now + 1 + slack}});
      if (need.ok()) {
        ++state.stats.fallback_pulls;
        ++state.stats.needs_submitted;
        need_owners_[*need] = {qi};
      }
    }
    state.seen_any_item = true;
    state.last_seen_item = std::max(state.last_seen_item, item.id);
    state.last_seen_seq = std::max(state.last_seen_seq, item.seq);
    state.current_anchor = now;
    WEBMON_RETURN_IF_ERROR(proxy_->Push(state.resource));

    // Content dependents evaluate directly on the pushed item.
    std::vector<size_t> fired;
    for (size_t d : state.dependents) {
      if (ContainsIgnoreCase(item.content, queries_[d].spec.needle)) {
        fired.push_back(d);
      }
    }
    if (!fired.empty() && state.last_fired_anchor != now) {
      WEBMON_RETURN_IF_ERROR(SubmitCrossing(qi, fired, now));
    }
  }
  return Status::OK();
}

Status QueryEngine::DeliverNotifies(Chronon now) {
  std::vector<size_t> notifies;
  notifies.swap(pending_notifies_);
  for (size_t qi : notifies) {
    QueryState& state = queries_[qi];
    ++state.stats.triggers_fired;
    state.current_anchor = now;
    // The proxy must still cross the stream: submit a capture need on the
    // notified feed with the query's WITHIN slack.
    const Chronon slack =
        state.spec.within_anchor.empty() ? 0 : state.spec.within_offset;
    auto need = proxy_->Submit({{state.resource, now, now + slack}});
    if (!need.ok()) continue;  // window beyond the epoch
    ++state.stats.needs_submitted;
    need_owners_[*need] = {qi};
  }
  return Status::OK();
}

Status QueryEngine::DeliverItems(ResourceId resource, Chronon now) {
  auto probed = world_->Probe(resource, now);
  if (!probed.ok()) {
    // A failed fetch (fault-injected world: outage, rate limit, timeout)
    // delivers nothing — the probe's budget is already spent and the items
    // may still be caught by a later probe. Anything else is a real bug.
    const StatusCode code = probed.status().code();
    if (code == StatusCode::kUnavailable ||
        code == StatusCode::kResourceExhausted ||
        code == StatusCode::kDeadlineExceeded) {
      return Status::OK();
    }
    return probed.status();
  }
  std::vector<FeedItem> items = std::move(probed).value();
  for (size_t i = 0; i < queries_.size(); ++i) {
    QueryState& state = queries_[i];
    if (state.resource != resource) continue;
    std::vector<size_t> fired;
    for (const FeedItem& item : items) {
      state.last_seen_seq = std::max(state.last_seen_seq, item.seq);
      if (state.seen_any_item && item.id <= state.last_seen_item) {
        // Already past this id — unless it sits in an open gap-recovery
        // window, in which case this pull is re-delivering an item the
        // push channel lost.
        bool recovered = false;
        for (const auto& [lo, hi] : state.recovery_ranges) {
          if (item.id > lo && item.id < hi) {
            recovered = true;
            break;
          }
        }
        if (!recovered) continue;
      }
      state.seen_any_item = true;
      state.last_seen_item = std::max(state.last_seen_item, item.id);
      ++state.stats.items_delivered;
      for (size_t d : state.dependents) {
        if (ContainsIgnoreCase(item.content, queries_[d].spec.needle) &&
            std::find(fired.begin(), fired.end(), d) == fired.end()) {
          fired.push_back(d);
        }
      }
    }
    // This pull saw the feed's whole buffer: every recoverable lost item
    // was just re-delivered, and anything still missing was evicted.
    state.recovery_ranges.clear();
    const Chronon anchor = state.current_anchor == kInvalidChronon
                               ? now
                               : state.current_anchor;
    if (!fired.empty() && state.last_fired_anchor != anchor) {
      WEBMON_RETURN_IF_ERROR(SubmitCrossing(i, fired, now));
    }
  }
  return Status::OK();
}

Status QueryEngine::Step() {
  if (proxy_->Done()) {
    return Status::OutOfRange("epoch already finished");
  }
  const Chronon now = proxy_->now();
  // Publish this chronon's items first so pushes precede scheduling.
  world_->AdvanceTo(now);
  WEBMON_RETURN_IF_ERROR(DeliverPushes(now));
  WEBMON_RETURN_IF_ERROR(DeliverNotifies(now));
  WEBMON_RETURN_IF_ERROR(FirePeriodic(now));
  WEBMON_ASSIGN_OR_RETURN(std::vector<ResourceId> probed, proxy_->Tick());
  for (ResourceId r : probed) {
    WEBMON_RETURN_IF_ERROR(DeliverItems(r, now));
  }
  return Status::OK();
}

Status QueryEngine::Run() {
  while (!Done()) {
    WEBMON_RETURN_IF_ERROR(Step());
  }
  return Status::OK();
}

StatusOr<QueryRuntimeStats> QueryEngine::StatsFor(
    const std::string& alias) const {
  auto it = by_alias_.find(alias);
  if (it == by_alias_.end()) {
    return Status::NotFound("unknown query alias " + alias);
  }
  return queries_[it->second].stats;
}

}  // namespace webmon
