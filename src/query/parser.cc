#include "query/parser.h"

#include "query/lexer.h"

namespace webmon {

namespace {

/// Token-stream cursor with typed expectations.
class Cursor {
 public:
  explicit Cursor(const std::vector<Token>& tokens) : tokens_(tokens) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AtKeyword(const char* keyword) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == keyword;
  }

  Status ExpectKeyword(const char* keyword) {
    if (!AtKeyword(keyword)) {
      return Error(std::string("expected ") + keyword);
    }
    Advance();
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  StatusOr<int64_t> ExpectNumber(const char* what) {
    if (Peek().kind != TokenKind::kNumber) {
      return Error(std::string("expected ") + what);
    }
    return Advance().value;
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(std::string("expected ") + TokenKindToString(kind));
    }
    Advance();
    return Status::OK();
  }

  /// Consumes an optional time-unit keyword (all units are chronons).
  void SkipUnit() {
    if (AtKeyword("MINUTES") || AtKeyword("SECONDS") ||
        AtKeyword("CHRONONS")) {
      Advance();
    }
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + ", got " + Peek().ToString() +
                                   " at offset " +
                                   std::to_string(Peek().offset));
  }

 private:
  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

StatusOr<QuerySpec> ParseOne(Cursor& cursor) {
  QuerySpec query;
  WEBMON_RETURN_IF_ERROR(cursor.ExpectKeyword("SELECT"));
  WEBMON_RETURN_IF_ERROR(cursor.ExpectKeyword("ITEM"));
  WEBMON_RETURN_IF_ERROR(cursor.ExpectKeyword("AS"));
  WEBMON_ASSIGN_OR_RETURN(query.alias, cursor.ExpectIdentifier("alias"));
  WEBMON_RETURN_IF_ERROR(cursor.ExpectKeyword("FROM"));
  WEBMON_RETURN_IF_ERROR(cursor.ExpectKeyword("FEED"));
  WEBMON_RETURN_IF_ERROR(cursor.Expect(TokenKind::kLParen));
  WEBMON_ASSIGN_OR_RETURN(query.feed, cursor.ExpectIdentifier("feed name"));
  WEBMON_RETURN_IF_ERROR(cursor.Expect(TokenKind::kRParen));
  WEBMON_RETURN_IF_ERROR(cursor.ExpectKeyword("WHEN"));

  if (cursor.AtKeyword("EVERY")) {
    cursor.Advance();
    query.trigger = TriggerKind::kEvery;
    WEBMON_ASSIGN_OR_RETURN(query.period, cursor.ExpectNumber("period"));
    cursor.SkipUnit();
    if (cursor.AtKeyword("AS")) {
      cursor.Advance();
      WEBMON_ASSIGN_OR_RETURN(query.anchor_def,
                              cursor.ExpectIdentifier("anchor name"));
    }
  } else if (cursor.AtKeyword("ON")) {
    cursor.Advance();
    if (cursor.AtKeyword("PUSH")) {
      cursor.Advance();
      query.trigger = TriggerKind::kPush;
    } else if (cursor.AtKeyword("NOTIFY")) {
      cursor.Advance();
      query.trigger = TriggerKind::kNotify;
    } else {
      return cursor.Error("expected PUSH or NOTIFY after ON");
    }
    if (cursor.AtKeyword("AS")) {
      cursor.Advance();
      WEBMON_ASSIGN_OR_RETURN(query.anchor_def,
                              cursor.ExpectIdentifier("anchor name"));
    }
  } else if (cursor.Peek().kind == TokenKind::kIdentifier) {
    query.trigger = TriggerKind::kContent;
    query.depends_on = cursor.Advance().text;
    WEBMON_RETURN_IF_ERROR(cursor.ExpectKeyword("CONTAINS"));
    if (cursor.Peek().kind != TokenKind::kPattern) {
      return cursor.Error("expected %pattern%");
    }
    query.needle = cursor.Advance().text;
  } else {
    return cursor.Error("expected EVERY, ON PUSH, or a dependency alias");
  }

  if (cursor.AtKeyword("WITHIN")) {
    cursor.Advance();
    WEBMON_ASSIGN_OR_RETURN(query.within_anchor,
                            cursor.ExpectIdentifier("anchor"));
    WEBMON_RETURN_IF_ERROR(cursor.Expect(TokenKind::kPlus));
    WEBMON_ASSIGN_OR_RETURN(query.within_offset,
                            cursor.ExpectNumber("offset"));
    cursor.SkipUnit();
  }
  return query;
}

}  // namespace

StatusOr<QuerySpec> ParseQuery(std::string_view text) {
  WEBMON_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Cursor cursor(tokens);
  WEBMON_ASSIGN_OR_RETURN(QuerySpec query, ParseOne(cursor));
  if (cursor.Peek().kind == TokenKind::kSemicolon) cursor.Advance();
  if (cursor.Peek().kind != TokenKind::kEnd) {
    return cursor.Error("trailing input after query");
  }
  return query;
}

StatusOr<std::vector<QuerySpec>> ParseQueries(std::string_view text) {
  WEBMON_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Cursor cursor(tokens);
  std::vector<QuerySpec> queries;
  while (cursor.Peek().kind != TokenKind::kEnd) {
    WEBMON_ASSIGN_OR_RETURN(QuerySpec query, ParseOne(cursor));
    queries.push_back(std::move(query));
    if (cursor.Peek().kind == TokenKind::kSemicolon) {
      cursor.Advance();
      continue;
    }
    if (cursor.Peek().kind != TokenKind::kEnd) {
      return cursor.Error("expected ';' between queries");
    }
  }
  WEBMON_RETURN_IF_ERROR(ValidateQueries(queries));
  return queries;
}

}  // namespace webmon
