// QueryEngine: executes a set of continuous queries against a simulated
// feed world through the monitoring proxy.
//
// This is the glue the paper's Section II sketches: periodic queries
// (WHEN EVERY) become recurring execution intervals; content queries
// (WHEN F1 CONTAINS %...%) submit crossing CEIs on the fly, with deadlines
// anchored at the triggering round (WITHIN T1+n); push queries (WHEN ON
// PUSH) ride server pushes for free and anchor their dependents. All probe
// scheduling is delegated to the Proxy and its policy — the engine only
// translates query semantics into complex execution intervals and content
// evaluation.

#ifndef WEBMON_QUERY_ENGINE_H_
#define WEBMON_QUERY_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "feedsim/feed_world.h"
#include "online/proxy.h"
#include "query/ast.h"
#include "util/status.h"

namespace webmon {

/// Per-query execution counters.
struct QueryRuntimeStats {
  /// Periodic rounds begun / pushes received / content matches fired.
  int64_t triggers_fired = 0;
  /// New feed items this query observed (via probes or pushes).
  int64_t items_delivered = 0;
  /// Monitoring needs (CEIs) submitted on the query's behalf.
  int64_t needs_submitted = 0;
  int64_t needs_captured = 0;
  int64_t needs_expired = 0;
  /// Push-loss fallback: sequence gaps spotted on the push channel, and
  /// the pull needs scheduled to recover the missed items.
  int64_t push_gaps_detected = 0;
  int64_t fallback_pulls = 0;
};

/// Binds parsed queries to a FeedWorld and drives an epoch.
class QueryEngine {
 public:
  /// `feed_ids` maps query feed names to FeedWorld resources; every feed a
  /// query references must be present. `world` must outlive the engine.
  static StatusOr<std::unique_ptr<QueryEngine>> Create(
      std::vector<QuerySpec> queries,
      const std::map<std::string, ResourceId>& feed_ids, FeedWorld* world,
      std::unique_ptr<Policy> policy, Chronon horizon, BudgetVector budget);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Executes one chronon: fires due periodic triggers, delivers pushes,
  /// lets the proxy probe, evaluates content over fetched items.
  Status Step();

  /// Runs Step() to the end of the epoch.
  Status Run();

  bool Done() const { return proxy_->Done(); }
  Chronon now() const { return proxy_->now(); }

  /// Stats for `alias`; NotFound for unknown aliases.
  StatusOr<QueryRuntimeStats> StatsFor(const std::string& alias) const;

  const Proxy& proxy() const { return *proxy_; }

 private:
  struct QueryState {
    QuerySpec spec;
    ResourceId resource = 0;
    QueryRuntimeStats stats;
    // Periodic bookkeeping.
    Chronon next_trigger = 0;
    Chronon current_anchor = kInvalidChronon;
    // Content dedup: last anchor a crossing fired for (per root query).
    Chronon last_fired_anchor = kInvalidChronon;
    // Highest item id this query has observed.
    uint64_t last_seen_item = 0;
    // Highest per-feed sequence number observed (probes and pushes); a
    // push arriving with seq > last_seen_seq + 1 reveals lost items.
    uint64_t last_seen_seq = 0;
    // Open gap-recovery windows (exclusive item-id bounds): the items lost
    // on the push channel have ids strictly between the last item seen
    // before the gap and the gap-revealing push. A fallback pull may
    // re-deliver ids inside these windows even though the max-id dedup has
    // already advanced past them; the next pull on the feed clears them
    // (the pull returned the whole buffer — anything still missing was
    // evicted and is unrecoverable).
    std::vector<std::pair<uint64_t, uint64_t>> recovery_ranges;
    bool seen_any_item = false;
    // Indices of content queries depending on this one.
    std::vector<size_t> dependents;
  };

  QueryEngine(FeedWorld* world, std::unique_ptr<Policy> policy,
              uint32_t num_resources, Chronon horizon, BudgetVector budget);

  // Fires due periodic triggers at `now`.
  Status FirePeriodic(Chronon now);
  // Delivers queued pushes at `now` (push + anchor + dependents).
  Status DeliverPushes(Chronon now);
  // Handles queued pub/sub notifications at `now`: submits a capture need
  // on the notified feed (the proxy still has to cross the stream).
  Status DeliverNotifies(Chronon now);
  // Delivers newly observable items of `resource` to its queries and fires
  // content dependents.
  Status DeliverItems(ResourceId resource, Chronon now);
  // Submits the crossing CEI for the dependents in `fired` of root `root`.
  Status SubmitCrossing(size_t root, const std::vector<size_t>& fired,
                        Chronon now);

  FeedWorld* world_;
  std::unique_ptr<Proxy> proxy_;
  std::vector<QueryState> queries_;
  std::unordered_map<std::string, size_t> by_alias_;
  // CEI id -> indices of the queries it serves (for capture attribution).
  std::unordered_map<CeiId, std::vector<size_t>> need_owners_;
  // Pushes collected by world subscriptions, pending for the next Step.
  std::vector<std::pair<size_t, FeedItem>> pending_pushes_;
  // Pub/sub notifications (query index only — the content stays remote).
  std::vector<size_t> pending_notifies_;
};

}  // namespace webmon

#endif  // WEBMON_QUERY_ENGINE_H_
