// Tokenizer for the continuous-query language.

#ifndef WEBMON_QUERY_LEXER_H_
#define WEBMON_QUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace webmon {

/// Token categories. Keywords are recognized case-insensitively and
/// reported as kKeyword with an upper-cased text.
enum class TokenKind {
  kKeyword,     // SELECT ITEM AS FROM FEED WHEN EVERY WITHIN CONTAINS ON
                // PUSH MINUTES SECONDS CHRONONS
  kIdentifier,  // F1, MishBlog, T1 ...
  kNumber,      // 10
  kPattern,     // %oil%  (text without the % delimiters)
  kLParen,      // (
  kRParen,      // )
  kPlus,        // +
  kSemicolon,   // ;
  kEnd,         // end of input
};

const char* TokenKindToString(TokenKind kind);

/// One token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t value = 0;  // for kNumber
  size_t offset = 0;

  std::string ToString() const;
};

/// Tokenizes `input`; the result always ends with a kEnd token. Fails on
/// unterminated patterns or unexpected characters.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

/// True iff `word` (already upper-cased) is a language keyword.
bool IsKeyword(const std::string& word);

}  // namespace webmon

#endif  // WEBMON_QUERY_LEXER_H_
