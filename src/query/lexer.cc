#include "query/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>

namespace webmon {

namespace {

constexpr std::array<const char*, 14> kKeywords = {
    "SELECT", "ITEM",     "AS",      "FROM",    "FEED",
    "WHEN",   "EVERY",    "WITHIN",  "ON",      "CONTAINS",
    "MINUTES", "SECONDS", "CHRONONS", "NOTIFY",
};
// "PUSH" is also a keyword; listed separately to keep the array size tidy.
constexpr const char* kPushKeyword = "PUSH";

std::string Upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

}  // namespace

bool IsKeyword(const std::string& word) {
  if (word == kPushKeyword) return true;
  return std::find_if(kKeywords.begin(), kKeywords.end(),
                      [&](const char* k) { return word == k; }) !=
         kKeywords.end();
}

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kPattern:
      return "pattern";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

std::string Token::ToString() const {
  std::ostringstream os;
  os << TokenKindToString(kind);
  if (!text.empty()) os << " '" << text << "'";
  return os.str();
}

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto error_at = [&](size_t pos, const std::string& message) {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos));
  };
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (c == '(') {
      token.kind = TokenKind::kLParen;
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      ++i;
    } else if (c == '+') {
      token.kind = TokenKind::kPlus;
      ++i;
    } else if (c == ';') {
      token.kind = TokenKind::kSemicolon;
      ++i;
    } else if (c == '%') {
      const size_t close = input.find('%', i + 1);
      if (close == std::string_view::npos) {
        return error_at(i, "unterminated %pattern%");
      }
      token.kind = TokenKind::kPattern;
      token.text = std::string(input.substr(i + 1, close - i - 1));
      if (token.text.empty()) {
        return error_at(i, "empty %pattern%");
      }
      i = close + 1;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = i;
      while (end < n && std::isdigit(static_cast<unsigned char>(input[end]))) {
        ++end;
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(input.substr(i, end - i));
      token.value = std::stoll(token.text);
      i = end;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = i;
      while (end < n &&
             (std::isalnum(static_cast<unsigned char>(input[end])) ||
              input[end] == '_' || input[end] == '.')) {
        ++end;
      }
      const std::string word(input.substr(i, end - i));
      const std::string upper = Upper(word);
      if (IsKeyword(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = word;
      }
      i = end;
    } else {
      return error_at(i, std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.kind = TokenKind::kEnd;
  end_token.offset = n;
  tokens.push_back(end_token);
  return tokens;
}

}  // namespace webmon
