// Recursive-descent parser for the continuous-query language.
//
// Grammar (keywords case-insensitive; time units MINUTES / SECONDS /
// CHRONONS all denote chronons):
//
//   queries  := query (';' query)* ';'?
//   query    := SELECT ITEM AS ident
//               FROM FEED '(' ident ')'
//               WHEN trigger
//               (WITHIN ident '+' number unit?)?
//   trigger  := EVERY number unit? (AS ident)?
//             | ident CONTAINS pattern
//             | ON PUSH (AS ident)?
//   pattern  := '%' text '%'

#ifndef WEBMON_QUERY_PARSER_H_
#define WEBMON_QUERY_PARSER_H_

#include <string_view>
#include <vector>

#include "query/ast.h"
#include "util/status.h"

namespace webmon {

/// Parses a single query.
StatusOr<QuerySpec> ParseQuery(std::string_view text);

/// Parses a ';'-separated list of queries and validates the set
/// (ValidateQueries).
StatusOr<std::vector<QuerySpec>> ParseQueries(std::string_view text);

}  // namespace webmon

#endif  // WEBMON_QUERY_PARSER_H_
