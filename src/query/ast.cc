#include "query/ast.h"

#include <sstream>
#include <unordered_map>

namespace webmon {

const char* TriggerKindToString(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kEvery:
      return "EVERY";
    case TriggerKind::kContent:
      return "CONTAINS";
    case TriggerKind::kPush:
      return "ON PUSH";
    case TriggerKind::kNotify:
      return "ON NOTIFY";
  }
  return "?";
}

std::string QuerySpec::ToString() const {
  std::ostringstream os;
  os << "SELECT item AS " << alias << " FROM feed(" << feed << ") WHEN ";
  switch (trigger) {
    case TriggerKind::kEvery:
      os << "EVERY " << period;
      if (!anchor_def.empty()) os << " AS " << anchor_def;
      break;
    case TriggerKind::kContent:
      os << depends_on << " CONTAINS %" << needle << "%";
      break;
    case TriggerKind::kPush:
      os << "ON PUSH";
      if (!anchor_def.empty()) os << " AS " << anchor_def;
      break;
    case TriggerKind::kNotify:
      os << "ON NOTIFY";
      if (!anchor_def.empty()) os << " AS " << anchor_def;
      break;
  }
  if (!within_anchor.empty()) {
    os << " WITHIN " << within_anchor << "+" << within_offset;
  }
  return os.str();
}

Status ValidateQueries(const std::vector<QuerySpec>& queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("no queries given");
  }
  std::unordered_map<std::string, const QuerySpec*> by_alias;
  std::unordered_map<std::string, const QuerySpec*> by_anchor;
  for (const auto& q : queries) {
    if (q.alias.empty()) {
      return Status::InvalidArgument("query missing an alias");
    }
    if (q.feed.empty()) {
      return Status::InvalidArgument("query " + q.alias + " missing a feed");
    }
    if (!by_alias.emplace(q.alias, &q).second) {
      return Status::InvalidArgument("duplicate alias " + q.alias);
    }
    if (!q.anchor_def.empty() &&
        !by_anchor.emplace(q.anchor_def, &q).second) {
      return Status::InvalidArgument("duplicate anchor " + q.anchor_def);
    }
    if (q.trigger == TriggerKind::kEvery && q.period <= 0) {
      return Status::InvalidArgument("query " + q.alias +
                                     " has non-positive period");
    }
    if (q.trigger == TriggerKind::kContent && q.needle.empty()) {
      return Status::InvalidArgument("query " + q.alias +
                                     " has an empty CONTAINS pattern");
    }
    if (q.within_offset < 0) {
      return Status::InvalidArgument("query " + q.alias +
                                     " has a negative WITHIN offset");
    }
  }
  for (const auto& q : queries) {
    if (q.trigger == TriggerKind::kContent) {
      auto dep = by_alias.find(q.depends_on);
      if (dep == by_alias.end()) {
        return Status::InvalidArgument("query " + q.alias +
                                       " depends on unknown alias " +
                                       q.depends_on);
      }
      if (dep->second->trigger == TriggerKind::kContent) {
        return Status::InvalidArgument(
            "query " + q.alias +
            " depends on a content-triggered query; chains must root at an "
            "EVERY or ON PUSH query");
      }
    }
    if (!q.within_anchor.empty()) {
      auto anchor = by_anchor.find(q.within_anchor);
      if (anchor == by_anchor.end()) {
        return Status::InvalidArgument("query " + q.alias +
                                       " references unknown anchor " +
                                       q.within_anchor);
      }
      // The anchor must be this query's own trigger or its dependency's.
      const QuerySpec* owner = anchor->second;
      const bool own = owner == &q || owner->alias == q.alias;
      const bool dependency_anchor =
          q.trigger == TriggerKind::kContent && owner->alias == q.depends_on;
      if (!own && !dependency_anchor) {
        return Status::InvalidArgument(
            "query " + q.alias + " uses anchor " + q.within_anchor +
            " that belongs to neither itself nor its dependency");
      }
    }
  }
  return Status::OK();
}

}  // namespace webmon
