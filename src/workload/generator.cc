#include "workload/generator.h"

#include <algorithm>
#include <unordered_set>

#include "util/zipf.h"

namespace webmon {

namespace {

// Draws `count` resources via Zipf(alpha, n). When `distinct` is set, keeps
// redrawing (bounded), then falls back to filling with the most popular
// unused resources so generation always succeeds when count <= n.
StatusOr<std::vector<ResourceId>> DrawResources(const ZipfSampler& sampler,
                                                uint32_t count, bool distinct,
                                                Rng& rng) {
  std::vector<ResourceId> chosen;
  chosen.reserve(count);
  if (!distinct) {
    for (uint32_t i = 0; i < count; ++i) {
      chosen.push_back(sampler.SampleIndex(rng));
    }
    return chosen;
  }
  if (count > sampler.n()) {
    return Status::InvalidArgument(
        "cannot draw more distinct resources than exist");
  }
  std::unordered_set<ResourceId> seen;
  uint32_t attempts = 0;
  const uint32_t max_attempts = 100 * count + 100;
  while (chosen.size() < count && attempts < max_attempts) {
    ++attempts;
    const ResourceId r = sampler.SampleIndex(rng);
    if (seen.insert(r).second) chosen.push_back(r);
  }
  for (ResourceId r = 0; chosen.size() < count; ++r) {
    if (seen.insert(r).second) chosen.push_back(r);
  }
  return chosen;
}

// Computes the [start, finish] of an interval anchored at `event` under the
// template's semantics. For kWindow, `slack` is the chosen window length
// (precomputed so the predicted EI and its true validity window share it);
// for kOverwrite, `next_event` is the following event on the same stream
// (kInvalidChronon if none). `k` is the epoch length.
std::pair<Chronon, Chronon> IntervalAt(const ProfileTemplate& tmpl,
                                       Chronon event, Chronon next_event,
                                       Chronon slack, Chronon k) {
  Chronon finish;
  if (tmpl.semantics == LengthSemantics::kWindow) {
    finish = event + slack;
  } else {
    finish = (next_event == kInvalidChronon) ? k - 1 : next_event - 1;
  }
  // Cap by omega and by the epoch.
  if (tmpl.max_ei_length > 0) {
    finish = std::min(finish, event + tmpl.max_ei_length - 1);
  }
  finish = std::min(finish, k - 1);
  finish = std::max(finish, event);  // at least the event chronon itself
  return {event, finish};
}

}  // namespace

StatusOr<GeneratedWorkload> GenerateWorkload(const ProfileTemplate& tmpl,
                                             const WorkloadOptions& options,
                                             const UpdateModel& model,
                                             const EventTrace& true_trace,
                                             Rng& rng) {
  if (tmpl.max_rank == 0) {
    return Status::InvalidArgument("template rank must be at least 1");
  }
  if (model.num_resources() != true_trace.num_resources() ||
      model.num_chronons() != true_trace.num_chronons()) {
    return Status::InvalidArgument(
        "update model and true trace describe different worlds");
  }
  const uint32_t n = model.num_resources();
  const Chronon k = model.num_chronons();
  if (n == 0) return Status::InvalidArgument("need at least one resource");

  WEBMON_ASSIGN_OR_RETURN(ZipfSampler resource_sampler,
                          ZipfSampler::Create(n, options.alpha));
  WEBMON_ASSIGN_OR_RETURN(ZipfSampler rank_sampler,
                          ZipfSampler::Create(tmpl.max_rank, options.beta));

  ProblemBuilder builder(n, k, BudgetVector::Uniform(options.budget));
  TrueWindowMap true_windows;
  // True windows for each added CEI, in insertion order; re-associated with
  // EI ids after Build().
  std::vector<std::vector<TrueWindow>> windows_per_cei;

  for (uint32_t pi = 0; pi < options.num_profiles; ++pi) {
    // Stage 1: profile complexity.
    const uint32_t rank =
        tmpl.exact_rank ? tmpl.max_rank : rank_sampler.Sample(rng);
    // Stage 2: the resources this profile crosses.
    WEBMON_ASSIGN_OR_RETURN(
        std::vector<ResourceId> resources,
        DrawResources(resource_sampler, rank, options.distinct_resources,
                      rng));

    builder.BeginProfile();

    // Per-resource cursor into the predicted update stream. In parallel
    // mode round j simply uses index j; in sequential mode the cursors
    // advance past the previous round's last event.
    std::vector<size_t> next_index(resources.size(), 0);
    Chronon cursor = kInvalidChronon;  // last event of the previous round

    for (uint32_t round = 0;; ++round) {
      if (options.max_ceis_per_profile > 0 &&
          round >= options.max_ceis_per_profile) {
        break;
      }
      // Resolve this round's event index per resource.
      bool all_have = true;
      std::vector<size_t> indices(resources.size());
      for (size_t i = 0; i < resources.size(); ++i) {
        const auto& predicted = model.PredictedUpdates(resources[i]);
        if (options.sequential_rounds) {
          size_t idx = next_index[i];
          while (idx < predicted.size() && predicted[idx] <= cursor) ++idx;
          next_index[i] = idx;
          if (idx >= predicted.size()) {
            all_have = false;
            break;
          }
          indices[i] = idx;
        } else {
          if (round >= predicted.size()) {
            all_have = false;
            break;
          }
          indices[i] = round;
        }
      }
      if (!all_have) break;

      std::vector<std::tuple<ResourceId, Chronon, Chronon>> eis;
      eis.reserve(resources.size());
      std::vector<TrueWindow> windows;
      windows.reserve(resources.size());
      Chronon round_last_event = 0;
      for (size_t i = 0; i < resources.size(); ++i) {
        const ResourceId r = resources[i];
        const auto& predicted = model.PredictedUpdates(r);
        const size_t idx = indices[i];
        const Chronon p = predicted[idx];
        const Chronon p_next =
            (idx + 1 < predicted.size()) ? predicted[idx + 1]
                                         : kInvalidChronon;
        const Chronon slack =
            (tmpl.semantics == LengthSemantics::kWindow && tmpl.random_window)
                ? rng.UniformInt(0, tmpl.window)
                : tmpl.window;
        const auto [start, finish] = IntervalAt(tmpl, p, p_next, slack, k);
        eis.emplace_back(r, start, finish);
        round_last_event = std::max(round_last_event, p);

        // Validity window anchored at the intended true event, with the
        // same slack the client's need specifies.
        const Chronon e = model.IntendedTrueEvent(r, idx);
        if (e == kInvalidChronon) {
          windows.push_back(TrueWindow{0, -1});
        } else {
          const Chronon e_next = true_trace.NextEventAtOrAfter(r, e + 1);
          const auto [ts, tf] = IntervalAt(tmpl, e, e_next, slack, k);
          windows.push_back(TrueWindow{ts, tf});
        }
      }
      WEBMON_ASSIGN_OR_RETURN(CeiId cei_id, builder.AddCei(eis));
      (void)cei_id;
      windows_per_cei.push_back(std::move(windows));

      if (options.sequential_rounds) {
        cursor = round_last_event;
      }
    }
  }

  WEBMON_ASSIGN_OR_RETURN(ProblemInstance problem, builder.Build());

  // Associate true windows with EI ids: CEIs were added in (profile, cei)
  // order, so walking the built instance in the same order re-aligns them.
  size_t cei_counter = 0;
  for (const auto& profile : problem.profiles()) {
    for (const auto& cei : profile.ceis) {
      const auto& windows = windows_per_cei[cei_counter++];
      for (size_t i = 0; i < cei.eis.size(); ++i) {
        true_windows[cei.eis[i].id] = windows[i];
      }
    }
  }

  return GeneratedWorkload{std::move(problem), std::move(true_windows)};
}

}  // namespace webmon
