#include "workload/validation.h"

#include <algorithm>

namespace webmon {

bool EiValidlyCaptured(const ExecutionInterval& ei, const Schedule& schedule,
                       const TrueWindowMap& true_windows) {
  auto it = true_windows.find(ei.id);
  if (it == true_windows.end()) {
    // No recorded window: the EI is its own validity window (perfect model).
    return schedule.ProbedInRange(ei.resource, ei.start, ei.finish);
  }
  const TrueWindow& w = it->second;
  if (w.Empty()) return false;
  const Chronon from = std::max(ei.start, w.start);
  const Chronon to = std::min(ei.finish, w.finish);
  if (from > to) return false;
  return schedule.ProbedInRange(ei.resource, from, to);
}

bool CeiValidlyCaptured(const Cei& cei, const Schedule& schedule,
                        const TrueWindowMap& true_windows) {
  if (cei.eis.empty()) return false;
  const size_t needed = cei.RequiredCaptures();
  size_t captured = 0;
  for (const auto& ei : cei.eis) {
    if (EiValidlyCaptured(ei, schedule, true_windows)) {
      if (++captured >= needed) return true;
    }
  }
  return captured >= needed;
}

int64_t ValidlyCapturedCeiCount(const ProblemInstance& problem,
                                const Schedule& schedule,
                                const TrueWindowMap& true_windows) {
  int64_t captured = 0;
  for (const auto& profile : problem.profiles()) {
    for (const auto& cei : profile.ceis) {
      if (CeiValidlyCaptured(cei, schedule, true_windows)) ++captured;
    }
  }
  return captured;
}

double ValidatedCompleteness(const ProblemInstance& problem,
                             const Schedule& schedule,
                             const TrueWindowMap& true_windows) {
  const int64_t total = problem.TotalCeis();
  if (total == 0) return 0.0;
  return static_cast<double>(
             ValidlyCapturedCeiCount(problem, schedule, true_windows)) /
         static_cast<double>(total);
}

}  // namespace webmon
