// Validated completeness: capture evaluation against the true event stream
// (paper Section V-H).
//
// Under a noisy update model the EIs the proxy schedules against are placed
// at *predicted* update times. A probe only truly delivers the update if it
// also falls inside the EI's true validity window (the span during which the
// real update is observable under the template's semantics). Validated
// completeness counts a CEI only when every EI received such a valid probe.

#ifndef WEBMON_WORKLOAD_VALIDATION_H_
#define WEBMON_WORKLOAD_VALIDATION_H_

#include "model/problem.h"
#include "model/schedule.h"
#include "workload/generator.h"

namespace webmon {

/// True iff some probe lands in the intersection of the EI's scheduled
/// window and its true validity window.
bool EiValidlyCaptured(const ExecutionInterval& ei, const Schedule& schedule,
                       const TrueWindowMap& true_windows);

/// True iff every EI of the CEI is validly captured.
bool CeiValidlyCaptured(const Cei& cei, const Schedule& schedule,
                        const TrueWindowMap& true_windows);

/// Number of CEIs validly captured.
int64_t ValidlyCapturedCeiCount(const ProblemInstance& problem,
                                const Schedule& schedule,
                                const TrueWindowMap& true_windows);

/// Eq. 1 evaluated with validated captures. With a perfect model (every true
/// window equals its EI) this equals GainedCompleteness.
double ValidatedCompleteness(const ProblemInstance& problem,
                             const Schedule& schedule,
                             const TrueWindowMap& true_windows);

}  // namespace webmon

#endif  // WEBMON_WORKLOAD_VALIDATION_H_
