// Profile templates (paper Section V-A.2).
//
// A template such as AuctionWatch(k) specifies the *shape* of generated
// profiles: the maximal number of streams crossed per CEI (the rank k) and
// how each EI's length is derived from the update stream — `overwrite`
// (capture each update before the next one replaces it) or `window(w)`
// (capture each update within w chronons of its occurrence).

#ifndef WEBMON_WORKLOAD_PROFILE_TEMPLATE_H_
#define WEBMON_WORKLOAD_PROFILE_TEMPLATE_H_

#include <cstdint>
#include <string>

#include "model/types.h"

namespace webmon {

/// How EI lengths follow from the update stream.
enum class LengthSemantics {
  /// EI spans from the update until just before the next update.
  kOverwrite,
  /// EI spans w chronons from the update (w = 0 gives unit-width EIs, the
  /// P^[1] class).
  kWindow,
};

const char* LengthSemanticsToString(LengthSemantics semantics);

/// A named profile shape.
struct ProfileTemplate {
  std::string name = "Custom";
  /// Maximal CEI rank k (streams crossed per CEI).
  uint32_t max_rank = 1;
  /// If true, every CEI has exactly max_rank EIs; otherwise each profile's
  /// rank is drawn from Zipf(beta, max_rank) ("upto k" in the paper).
  bool exact_rank = true;
  LengthSemantics semantics = LengthSemantics::kWindow;
  /// Window length w (chronons); only used with kWindow.
  Chronon window = 10;
  /// Hard cap omega on any EI's length (Table I's "Max. EI length").
  Chronon max_ei_length = 20;
  /// If true (kWindow only), each EI's slack is drawn uniformly from
  /// [0, window] instead of being exactly `window` — Table I describes
  /// omega as a MAXIMUM EI length, so the baseline workloads vary lengths.
  bool random_window = false;

  /// "AuctionWatch(k)": monitor k auctions, notify when a new bid has been
  /// observed in all k (the paper's running template).
  static ProfileTemplate AuctionWatch(uint32_t k, bool exact_rank,
                                      Chronon window);

  /// "NewsWatch(k)": cross k news feeds with overwrite semantics — items
  /// must be scraped before they roll off the feed.
  static ProfileTemplate NewsWatch(uint32_t k, bool exact_rank,
                                   Chronon max_ei_length);

  /// One-line description for reports.
  std::string ToString() const;
};

}  // namespace webmon

#endif  // WEBMON_WORKLOAD_PROFILE_TEMPLATE_H_
