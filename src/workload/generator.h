// Profile-instance generation (paper Section V-A.2).
//
// Given an update model over a trace, generates m profile instances in two
// Zipf stages:
//   1. the rank of each profile is drawn from Zipf(beta, k) — beta = 0 is
//      uniform U[1,k], larger beta favors simpler profiles;
//   2. the profile's resources are drawn from Zipf(alpha, n) — alpha = 0 is
//      uniform, larger alpha skews toward popular resources (alpha ~ 1.37
//      was measured for Web feeds).
// Each profile then yields one CEI per "round": round j crosses the j-th
// predicted update of every chosen resource, with EI lengths given by the
// template's overwrite / window(w) semantics. Rounds continue while every
// chosen resource still has a j-th predicted update (optionally capped).

#ifndef WEBMON_WORKLOAD_GENERATOR_H_
#define WEBMON_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <unordered_map>

#include "model/problem.h"
#include "trace/trace.h"
#include "trace/update_model.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/profile_template.h"

namespace webmon {

/// Knobs of the generator beyond the template shape.
struct WorkloadOptions {
  /// Number of profile instances m.
  uint32_t num_profiles = 100;
  /// Resource-popularity skew (stage-2 Zipf alpha).
  double alpha = 0.3;
  /// Rank-variance skew (stage-1 Zipf beta); only used when the template has
  /// exact_rank == false.
  double beta = 0.0;
  /// Require the EIs of a CEI to refer to distinct resources (used to avoid
  /// intra-resource overlap inside a CEI, e.g. the P^[1] experiments).
  bool distinct_resources = true;
  /// Cap on CEIs generated per profile; 0 = unlimited (all rounds).
  uint32_t max_ceis_per_profile = 0;
  /// Round construction. Parallel rounds (false) pair the j-th predicted
  /// update of every chosen resource — all of a profile's CEIs coexist.
  /// Sequential rounds (true) model the paper's AuctionWatch semantics
  /// ("notify after a new bid is posted in ALL k auctions", then restart):
  /// round j+1 anchors at the first predicted updates strictly after round
  /// j's last event, so a profile's CEIs follow one another and the number
  /// of CEIs grows with the update intensity.
  bool sequential_rounds = false;
  /// Uniform per-chronon probe budget C of the built instance.
  int64_t budget = 1;
};

/// The true capture-validity window of an EI (equals the EI itself under a
/// perfect model; shifted under noisy models).
struct TrueWindow {
  Chronon start = 0;
  Chronon finish = -1;  // start > finish denotes an unsatisfiable window

  bool Empty() const { return start > finish; }
};

/// EiId -> true validity window, for noise-experiment validation.
using TrueWindowMap = std::unordered_map<EiId, TrueWindow>;

/// A generated instance plus the information needed to validate captures
/// against the true event stream.
struct GeneratedWorkload {
  ProblemInstance problem;
  TrueWindowMap true_windows;
};

/// Generates a workload. `model` supplies the predicted update streams used
/// to place EIs; `true_trace` supplies the real events used to compute
/// validity windows (pass the same trace the model was built from).
StatusOr<GeneratedWorkload> GenerateWorkload(const ProfileTemplate& tmpl,
                                             const WorkloadOptions& options,
                                             const UpdateModel& model,
                                             const EventTrace& true_trace,
                                             Rng& rng);

}  // namespace webmon

#endif  // WEBMON_WORKLOAD_GENERATOR_H_
