#include "workload/profile_template.h"

#include <sstream>

namespace webmon {

const char* LengthSemanticsToString(LengthSemantics semantics) {
  switch (semantics) {
    case LengthSemantics::kOverwrite:
      return "overwrite";
    case LengthSemantics::kWindow:
      return "window";
  }
  return "?";
}

ProfileTemplate ProfileTemplate::AuctionWatch(uint32_t k, bool exact_rank,
                                              Chronon window) {
  ProfileTemplate t;
  t.name = "AuctionWatch(" + std::to_string(k) + ")";
  t.max_rank = k;
  t.exact_rank = exact_rank;
  t.semantics = LengthSemantics::kWindow;
  t.window = window;
  return t;
}

ProfileTemplate ProfileTemplate::NewsWatch(uint32_t k, bool exact_rank,
                                           Chronon max_ei_length) {
  ProfileTemplate t;
  t.name = "NewsWatch(" + std::to_string(k) + ")";
  t.max_rank = k;
  t.exact_rank = exact_rank;
  t.semantics = LengthSemantics::kOverwrite;
  t.max_ei_length = max_ei_length;
  return t;
}

std::string ProfileTemplate::ToString() const {
  std::ostringstream os;
  os << name << "{rank" << (exact_rank ? "=" : "<=") << max_rank << " "
     << LengthSemanticsToString(semantics);
  if (semantics == LengthSemantics::kWindow) os << "(w=" << window << ")";
  os << " omega=" << max_ei_length << "}";
  return os.str();
}

}  // namespace webmon
