// Synthetic Poisson trace generator (paper Section V-A.1).
//
// Each resource's update stream is a homogeneous Poisson process whose
// intensity is controlled by lambda, the expected number of updates per
// resource over the whole epoch (the paper sweeps lambda in [10, 50] with a
// baseline of 20). An optional heterogeneity factor lets resources differ in
// activity while preserving the average.

#ifndef WEBMON_TRACE_POISSON_TRACE_H_
#define WEBMON_TRACE_POISSON_TRACE_H_

#include "trace/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace webmon {

/// Parameters of the synthetic trace.
struct PoissonTraceOptions {
  uint32_t num_resources = 1000;
  Chronon num_chronons = 1000;
  /// Expected updates per resource over the epoch (Table I's lambda).
  double lambda = 20.0;
  /// 0 = all resources share lambda; otherwise each resource's rate is
  /// lambda * f where f is log-normal-ish: exp(N(0, heterogeneity)),
  /// normalized to keep the mean rate at lambda.
  double heterogeneity = 0.0;
};

/// Generates one trace; deterministic given `rng` state.
StatusOr<EventTrace> GeneratePoissonTrace(const PoissonTraceOptions& options,
                                          Rng& rng);

}  // namespace webmon

#endif  // WEBMON_TRACE_POISSON_TRACE_H_
