#include "trace/update_model.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/poisson.h"

namespace webmon {

// ---------------------------------------------------------------- Perfect --

PerfectUpdateModel::PerfectUpdateModel(const EventTrace& trace)
    : UpdateModel(trace.num_resources(), trace.num_chronons()),
      trace_(trace) {}

const std::vector<Chronon>& PerfectUpdateModel::PredictedUpdates(
    ResourceId resource) const {
  return trace_.EventsOf(resource);
}

Chronon PerfectUpdateModel::IntendedTrueEvent(ResourceId resource,
                                              size_t index) const {
  const auto& events = trace_.EventsOf(resource);
  if (index >= events.size()) return kInvalidChronon;
  return events[index];
}

// -------------------------------------------------------------------- FPN --

FpnUpdateModel::FpnUpdateModel(uint32_t num_resources, Chronon num_chronons,
                               double z_noise)
    : UpdateModel(num_resources, num_chronons),
      z_noise_(z_noise),
      pairs_(num_resources),
      predicted_(num_resources) {}

StatusOr<FpnUpdateModel> FpnUpdateModel::Create(const EventTrace& trace,
                                                double z_noise,
                                                Chronon max_shift, Rng& rng) {
  if (z_noise < 0.0 || z_noise > 1.0) {
    return Status::InvalidArgument("z_noise must be in [0,1]");
  }
  if (max_shift <= 0) {
    return Status::InvalidArgument("max_shift must be positive");
  }
  FpnUpdateModel model(trace.num_resources(), trace.num_chronons(), z_noise);
  const Chronon k = trace.num_chronons();
  for (ResourceId r = 0; r < trace.num_resources(); ++r) {
    auto& pairs = model.pairs_[r];
    for (Chronon e : trace.EventsOf(r)) {
      Chronon p = e;
      if (rng.Bernoulli(z_noise)) {
        // Non-zero shift in [-max_shift, max_shift], clamped to the epoch.
        Chronon shift = 0;
        while (shift == 0) {
          shift = rng.UniformInt(-max_shift, max_shift);
        }
        p = std::clamp<Chronon>(e + shift, 0, k - 1);
        if (p == e) {
          // Clamping collapsed the shift; push one chronon inward.
          p = (e == 0) ? 1 : e - 1;
          if (p >= k) p = k - 1;
        }
      }
      pairs.emplace_back(p, e);
    }
    std::sort(pairs.begin(), pairs.end());
    auto& predicted = model.predicted_[r];
    predicted.reserve(pairs.size());
    for (const auto& [p, e] : pairs) predicted.push_back(p);
  }
  return model;
}

const std::vector<Chronon>& FpnUpdateModel::PredictedUpdates(
    ResourceId resource) const {
  static const std::vector<Chronon>* const kEmpty = new std::vector<Chronon>();
  if (resource >= predicted_.size()) return *kEmpty;
  return predicted_[resource];
}

Chronon FpnUpdateModel::IntendedTrueEvent(ResourceId resource,
                                          size_t index) const {
  if (resource >= pairs_.size() || index >= pairs_[resource].size()) {
    return kInvalidChronon;
  }
  return pairs_[resource][index].second;
}

std::string FpnUpdateModel::name() const {
  return "fpn(z=" + std::to_string(z_noise_) + ")";
}

// ------------------------------------------------------ EstimatedPoisson --

EstimatedPoissonModel::EstimatedPoissonModel(const EventTrace& trace)
    : UpdateModel(trace.num_resources(), trace.num_chronons()),
      trace_(trace),
      predicted_(trace.num_resources()) {}

StatusOr<EstimatedPoissonModel> EstimatedPoissonModel::Create(
    const EventTrace& trace, Rng& rng) {
  EstimatedPoissonModel model(trace);
  const double horizon = static_cast<double>(trace.num_chronons());
  for (ResourceId r = 0; r < trace.num_resources(); ++r) {
    const double rate =
        static_cast<double>(trace.EventsOf(r).size()) / horizon;
    WEBMON_ASSIGN_OR_RETURN(std::vector<double> arrivals,
                            HomogeneousPoissonArrivals(rate, horizon, rng));
    model.predicted_[r] =
        BucketArrivals(arrivals, horizon, trace.num_chronons());
    std::sort(model.predicted_[r].begin(), model.predicted_[r].end());
    model.predicted_[r].erase(
        std::unique(model.predicted_[r].begin(), model.predicted_[r].end()),
        model.predicted_[r].end());
  }
  return model;
}

const std::vector<Chronon>& EstimatedPoissonModel::PredictedUpdates(
    ResourceId resource) const {
  static const std::vector<Chronon>* const kEmpty = new std::vector<Chronon>();
  if (resource >= predicted_.size()) return *kEmpty;
  return predicted_[resource];
}

Chronon EstimatedPoissonModel::IntendedTrueEvent(ResourceId resource,
                                                 size_t index) const {
  if (resource >= predicted_.size() || index >= predicted_[resource].size()) {
    return kInvalidChronon;
  }
  const Chronon p = predicted_[resource][index];
  // Nearest true event to the prediction.
  const Chronon before = trace_.LastEventAtOrBefore(resource, p);
  const Chronon after = trace_.NextEventAtOrAfter(resource, p);
  if (before == kInvalidChronon) return after;
  if (after == kInvalidChronon) return before;
  return (p - before <= after - p) ? before : after;
}

}  // namespace webmon
