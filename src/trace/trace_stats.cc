#include "trace/trace_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace webmon {

double FitZipfExponent(const std::vector<int64_t>& counts) {
  // Collect positive counts in descending order; rank them 1..n.
  std::vector<int64_t> sorted;
  sorted.reserve(counts.size());
  for (int64_t c : counts) {
    if (c > 0) sorted.push_back(c);
  }
  if (sorted.size() < 2) return 0.0;
  std::sort(sorted.begin(), sorted.end(), std::greater<int64_t>());

  // Least squares on y = log(count), x = log(rank): slope = -exponent.
  double sum_x = 0;
  double sum_y = 0;
  double sum_xx = 0;
  double sum_xy = 0;
  const double n = static_cast<double>(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(static_cast<double>(sorted[i]));
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double denom = n * sum_xx - sum_x * sum_x;
  if (denom <= 0.0) return 0.0;
  const double slope = (n * sum_xy - sum_x * sum_y) / denom;
  return std::max(0.0, -slope);
}

TraceStats ComputeTraceStats(const EventTrace& trace) {
  TraceStats stats;
  stats.total_events = trace.TotalEvents();
  stats.num_resources = trace.num_resources();
  stats.num_chronons = trace.num_chronons();

  std::vector<int64_t> counts;
  counts.reserve(trace.num_resources());
  for (ResourceId r = 0; r < trace.num_resources(); ++r) {
    const auto& events = trace.EventsOf(r);
    counts.push_back(static_cast<int64_t>(events.size()));
    if (!events.empty()) ++stats.active_resources;
    stats.events_per_resource.Add(static_cast<double>(events.size()));
    for (size_t i = 1; i < events.size(); ++i) {
      stats.inter_update_gap.Add(
          static_cast<double>(events[i] - events[i - 1]));
    }
  }

  if (stats.total_events > 0 && !counts.empty()) {
    std::vector<int64_t> sorted = counts;
    std::sort(sorted.begin(), sorted.end(), std::greater<int64_t>());
    const size_t decile = std::max<size_t>(1, sorted.size() / 10);
    int64_t top = 0;
    for (size_t i = 0; i < decile; ++i) top += sorted[i];
    stats.top_decile_share =
        static_cast<double>(top) / static_cast<double>(stats.total_events);
  }
  stats.zipf_exponent = FitZipfExponent(counts);
  return stats;
}

std::string TraceStats::ToString() const {
  std::ostringstream os;
  os << "trace: " << num_resources << " resources x " << num_chronons
     << " chronons, " << total_events << " events (" << active_resources
     << " active resources)\n"
     << "events/resource: " << events_per_resource.ToString() << "\n"
     << "inter-update gap: " << inter_update_gap.ToString() << "\n"
     << "top-decile activity share: " << top_decile_share << "\n"
     << "fitted Zipf exponent: " << zipf_exponent << "\n";
  return os.str();
}

}  // namespace webmon
