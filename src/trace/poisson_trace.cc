#include "trace/poisson_trace.h"

#include <cmath>

#include "util/poisson.h"

namespace webmon {

StatusOr<EventTrace> GeneratePoissonTrace(const PoissonTraceOptions& options,
                                          Rng& rng) {
  if (options.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be >= 0");
  }
  if (options.heterogeneity < 0.0) {
    return Status::InvalidArgument("heterogeneity must be >= 0");
  }
  if (options.num_chronons <= 0) {
    return Status::InvalidArgument("epoch must have at least one chronon");
  }
  EventTrace trace(options.num_resources, options.num_chronons);
  const double horizon = static_cast<double>(options.num_chronons);
  for (uint32_t r = 0; r < options.num_resources; ++r) {
    double lambda = options.lambda;
    if (options.heterogeneity > 0.0) {
      // Log-normal multiplier with unit mean: exp(N(-s^2/2, s)).
      const double s = options.heterogeneity;
      lambda *= std::exp(rng.Normal(-0.5 * s * s, s));
    }
    const double rate = lambda / horizon;
    WEBMON_ASSIGN_OR_RETURN(std::vector<double> arrivals,
                            HomogeneousPoissonArrivals(rate, horizon, rng));
    for (Chronon t :
         BucketArrivals(arrivals, horizon, options.num_chronons)) {
      WEBMON_RETURN_IF_ERROR(trace.AddEvent(r, t));
    }
  }
  trace.Finalize();
  return trace;
}

}  // namespace webmon
