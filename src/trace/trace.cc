#include "trace/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace webmon {

EventTrace::EventTrace(uint32_t num_resources, Chronon num_chronons)
    : num_resources_(num_resources),
      num_chronons_(num_chronons),
      events_(num_resources) {}

Status EventTrace::AddEvent(ResourceId resource, Chronon t) {
  if (resource >= num_resources_) {
    return Status::OutOfRange("event resource out of range");
  }
  if (t < 0 || t >= num_chronons_) {
    return Status::OutOfRange("event chronon out of range");
  }
  events_[resource].push_back(t);
  ++total_events_;
  return Status::OK();
}

void EventTrace::Finalize() {
  total_events_ = 0;
  for (auto& stream : events_) {
    std::sort(stream.begin(), stream.end());
    stream.erase(std::unique(stream.begin(), stream.end()), stream.end());
    total_events_ += static_cast<int64_t>(stream.size());
  }
}

const std::vector<Chronon>& EventTrace::EventsOf(ResourceId resource) const {
  static const std::vector<Chronon>* const kEmpty = new std::vector<Chronon>();
  if (resource >= num_resources_) return *kEmpty;
  return events_[resource];
}

Chronon EventTrace::NextEventAtOrAfter(ResourceId resource, Chronon t) const {
  const auto& stream = EventsOf(resource);
  auto it = std::lower_bound(stream.begin(), stream.end(), t);
  return it == stream.end() ? kInvalidChronon : *it;
}

Chronon EventTrace::LastEventAtOrBefore(ResourceId resource, Chronon t) const {
  const auto& stream = EventsOf(resource);
  auto it = std::upper_bound(stream.begin(), stream.end(), t);
  return it == stream.begin() ? kInvalidChronon : *(it - 1);
}

bool EventTrace::HasEventInRange(ResourceId resource, Chronon from,
                                 Chronon to) const {
  const Chronon next = NextEventAtOrAfter(resource, from);
  return next != kInvalidChronon && next <= to;
}

std::string EventTrace::ToText() const {
  std::ostringstream os;
  os << "webmon-trace " << num_resources_ << " " << num_chronons_ << "\n";
  for (uint32_t r = 0; r < num_resources_; ++r) {
    for (Chronon t : events_[r]) {
      os << r << " " << t << "\n";
    }
  }
  return os.str();
}

StatusOr<EventTrace> EventTrace::FromText(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  int64_t n = 0;
  int64_t k = 0;
  if (!(is >> magic >> n >> k) || magic != "webmon-trace" || n < 0 || k <= 0) {
    return Status::InvalidArgument("malformed trace header");
  }
  EventTrace trace(static_cast<uint32_t>(n), k);
  int64_t r = 0;
  int64_t t = 0;
  while (is >> r >> t) {
    if (r < 0 || r >= n) {
      return Status::OutOfRange("trace event resource out of range");
    }
    WEBMON_RETURN_IF_ERROR(
        trace.AddEvent(static_cast<ResourceId>(r), t));
  }
  if (!is.eof()) {
    return Status::InvalidArgument("malformed trace event line");
  }
  trace.Finalize();
  return trace;
}

Status EventTrace::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << ToText();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<EventTrace> EventTrace::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromText(buf.str());
}

}  // namespace webmon
