// Synthetic RSS news-feed trace (substitute for the paper's real trace).
//
// The paper used ~68,000 news events from 130 RSS feeds gathered over two
// months. We synthesize the equivalent: each feed is a resource publishing
// via a homogeneous Poisson process; feed activity is Zipf-skewed across
// feeds (the paper itself estimates the popularity/activity skew of Web
// feeds at alpha ~ 1.37), matching the totals.

#ifndef WEBMON_TRACE_NEWS_TRACE_H_
#define WEBMON_TRACE_NEWS_TRACE_H_

#include "trace/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace webmon {

/// Parameters calibrated to the paper's trace by default.
struct NewsTraceOptions {
  uint32_t num_feeds = 130;
  /// Expected total events across all feeds.
  int64_t target_total_events = 68000;
  /// Epoch length. Default: 61 days at 1-hour chronons.
  Chronon num_chronons = 1464;
  /// Zipf exponent of the activity skew across feeds.
  double activity_skew = 1.37;
};

/// Generates one news trace; deterministic given `rng` state.
StatusOr<EventTrace> GenerateNewsTrace(const NewsTraceOptions& options,
                                       Rng& rng);

}  // namespace webmon

#endif  // WEBMON_TRACE_NEWS_TRACE_H_
