#include "trace/news_trace.h"

#include <cmath>

#include "util/poisson.h"
#include "util/zipf.h"

namespace webmon {

namespace {

// Expected number of distinct chronons with >= 1 event when a feed with
// Poisson rate `rate` (events per chronon) runs for `k` chronons.
double ExpectedUnique(double rate, double k) {
  return k * (1.0 - std::exp(-rate));
}

}  // namespace

StatusOr<EventTrace> GenerateNewsTrace(const NewsTraceOptions& options,
                                       Rng& rng) {
  if (options.num_feeds == 0) {
    return Status::InvalidArgument("need at least one feed");
  }
  if (options.num_chronons <= 0) {
    return Status::InvalidArgument("epoch must have at least one chronon");
  }
  if (options.target_total_events < 0) {
    return Status::InvalidArgument("target_total_events must be >= 0");
  }
  const double k = static_cast<double>(options.num_chronons);
  const double target = static_cast<double>(options.target_total_events);
  if (target > 0.95 * k * static_cast<double>(options.num_feeds)) {
    return Status::InvalidArgument(
        "target_total_events too large for the epoch: at most one event per "
        "feed per chronon survives");
  }
  WEBMON_ASSIGN_OR_RETURN(
      ZipfSampler skew,
      ZipfSampler::Create(options.num_feeds, options.activity_skew));

  // A chronon is indivisible, so multiple events of a feed within one
  // chronon collapse into one observable update. Calibrate a global rate
  // multiplier m (binary search) so the EXPECTED POST-COLLAPSE total matches
  // target_total_events despite the Zipf skew concentrating raw events on
  // the top feeds.
  std::vector<double> share(options.num_feeds);
  for (uint32_t f = 0; f < options.num_feeds; ++f) {
    share[f] = skew.Probability(f + 1);
  }
  double multiplier = 1.0;
  if (target > 0) {
    double lo = 0.0;
    double hi = 1.0;
    auto unique_total = [&](double m) {
      double total = 0.0;
      for (uint32_t f = 0; f < options.num_feeds; ++f) {
        total += ExpectedUnique(m * share[f] * target / k, k);
      }
      return total;
    };
    while (unique_total(hi) < target && hi < 1e6) hi *= 2.0;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (unique_total(mid) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    multiplier = 0.5 * (lo + hi);
  }

  EventTrace trace(options.num_feeds, options.num_chronons);
  for (uint32_t f = 0; f < options.num_feeds; ++f) {
    const double rate = multiplier * share[f] * target / k;
    WEBMON_ASSIGN_OR_RETURN(std::vector<double> arrivals,
                            HomogeneousPoissonArrivals(rate, k, rng));
    for (Chronon t : BucketArrivals(arrivals, k, options.num_chronons)) {
      WEBMON_RETURN_IF_ERROR(trace.AddEvent(f, t));
    }
  }
  trace.Finalize();
  return trace;
}

}  // namespace webmon
