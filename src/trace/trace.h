// EventTrace: the stream of update events per resource.
//
// Both real-world traces the paper uses (eBay auctions, RSS news feeds) and
// the synthetic Poisson traces reduce to this structure: for each resource,
// the sorted chronons at which the resource's content changed. The workload
// generator turns these into execution intervals; the noise experiments
// validate probes against the true trace.

#ifndef WEBMON_TRACE_TRACE_H_
#define WEBMON_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/types.h"
#include "util/status.h"

namespace webmon {

/// One update event.
struct UpdateEvent {
  ResourceId resource = 0;
  Chronon chronon = 0;

  friend bool operator==(const UpdateEvent& a, const UpdateEvent& b) = default;
};

/// Per-resource sorted update event streams over a fixed epoch.
class EventTrace {
 public:
  EventTrace(uint32_t num_resources, Chronon num_chronons);

  /// Appends an event; call Finalize() after the last AddEvent. Fails for
  /// out-of-range coordinates.
  Status AddEvent(ResourceId resource, Chronon t);

  /// Sorts and dedups every stream; must be called before queries if events
  /// were added out of order.
  void Finalize();

  /// Sorted event chronons of `resource` (empty for out-of-range ids).
  const std::vector<Chronon>& EventsOf(ResourceId resource) const;

  /// First event chronon >= t on `resource`; kInvalidChronon if none.
  Chronon NextEventAtOrAfter(ResourceId resource, Chronon t) const;

  /// Last event chronon <= t on `resource`; kInvalidChronon if none.
  Chronon LastEventAtOrBefore(ResourceId resource, Chronon t) const;

  /// True iff `resource` has an event in [from, to] inclusive.
  bool HasEventInRange(ResourceId resource, Chronon from, Chronon to) const;

  int64_t TotalEvents() const { return total_events_; }
  uint32_t num_resources() const { return num_resources_; }
  Chronon num_chronons() const { return num_chronons_; }

  /// Serializes as text: header line "webmon-trace <n> <K>", then one line
  /// "<resource> <chronon>" per event.
  std::string ToText() const;
  /// Parses the ToText() format.
  static StatusOr<EventTrace> FromText(const std::string& text);

  /// File round-trip helpers for sharing traces between runs.
  Status SaveToFile(const std::string& path) const;
  static StatusOr<EventTrace> LoadFromFile(const std::string& path);

 private:
  uint32_t num_resources_;
  Chronon num_chronons_;
  int64_t total_events_ = 0;
  std::vector<std::vector<Chronon>> events_;
};

}  // namespace webmon

#endif  // WEBMON_TRACE_TRACE_H_
