// Update models: the proxy's belief about when resources update.
//
// The beginning of an execution interval is determined by an update event;
// when the server does not push, the proxy must *predict* the event using an
// update model (paper Section III-A). The workload generator places EIs at
// the model's predicted update times; the noise experiments (Section V-H)
// then validate captures against the true event trace.
//
// Three models are provided:
//  * PerfectUpdateModel — predictions equal the true events (no noise).
//  * FpnUpdateModel — the paper's FPN(Z) noisy model: with probability
//    z_noise each predicted event deviates from the true event by a random
//    non-zero shift. (The paper's prose is self-contradictory about the
//    polarity of Z; here z_noise = 0 is a perfect model and z_noise = 1 is
//    totally noisy, which matches the trend Figure 15 describes.)
//  * EstimatedPoissonModel — the Section V-H news experiment: a homogeneous
//    Poisson model whose per-resource rate is estimated from the trace, with
//    predictions regenerated from that model.

#ifndef WEBMON_TRACE_UPDATE_MODEL_H_
#define WEBMON_TRACE_UPDATE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace webmon {

/// A (possibly imperfect) prediction of each resource's update stream.
class UpdateModel {
 public:
  virtual ~UpdateModel() = default;

  /// Predicted update chronons for `resource`, sorted ascending.
  virtual const std::vector<Chronon>& PredictedUpdates(
      ResourceId resource) const = 0;

  /// The true event chronon that prediction #`index` (into
  /// PredictedUpdates(resource)) intends to capture; kInvalidChronon when
  /// the model cannot associate one. Used to build per-EI validity windows.
  virtual Chronon IntendedTrueEvent(ResourceId resource,
                                    size_t index) const = 0;

  /// Short identifier for reports.
  virtual std::string name() const = 0;

  uint32_t num_resources() const { return num_resources_; }
  Chronon num_chronons() const { return num_chronons_; }

 protected:
  UpdateModel(uint32_t num_resources, Chronon num_chronons)
      : num_resources_(num_resources), num_chronons_(num_chronons) {}

  uint32_t num_resources_;
  Chronon num_chronons_;
};

/// Predictions equal the true trace. Keeps a reference to `trace`, which
/// must outlive the model.
class PerfectUpdateModel final : public UpdateModel {
 public:
  explicit PerfectUpdateModel(const EventTrace& trace);

  const std::vector<Chronon>& PredictedUpdates(
      ResourceId resource) const override;
  Chronon IntendedTrueEvent(ResourceId resource, size_t index) const override;
  std::string name() const override { return "perfect"; }

 private:
  const EventTrace& trace_;
};

/// FPN(Z)-style noisy model. Owns its perturbed predictions.
class FpnUpdateModel final : public UpdateModel {
 public:
  /// `z_noise` in [0,1] is the probability each event's prediction deviates;
  /// deviations are uniform non-zero shifts in [-max_shift, +max_shift],
  /// clamped into the epoch. Fails for out-of-range parameters.
  static StatusOr<FpnUpdateModel> Create(const EventTrace& trace,
                                         double z_noise, Chronon max_shift,
                                         Rng& rng);

  const std::vector<Chronon>& PredictedUpdates(
      ResourceId resource) const override;
  Chronon IntendedTrueEvent(ResourceId resource, size_t index) const override;
  std::string name() const override;

  double z_noise() const { return z_noise_; }

 private:
  FpnUpdateModel(uint32_t num_resources, Chronon num_chronons, double z_noise);

  double z_noise_;
  // Per resource, (predicted, true) pairs sorted by predicted chronon.
  std::vector<std::vector<std::pair<Chronon, Chronon>>> pairs_;
  // Cached prediction-only views aligned with pairs_.
  std::vector<std::vector<Chronon>> predicted_;
};

/// Homogeneous Poisson model with per-resource rate estimated from the
/// trace; predictions are regenerated from the estimated model.
class EstimatedPoissonModel final : public UpdateModel {
 public:
  static StatusOr<EstimatedPoissonModel> Create(const EventTrace& trace,
                                                Rng& rng);

  const std::vector<Chronon>& PredictedUpdates(
      ResourceId resource) const override;
  Chronon IntendedTrueEvent(ResourceId resource, size_t index) const override;
  std::string name() const override { return "estimated-poisson"; }

 private:
  EstimatedPoissonModel(const EventTrace& trace);

  const EventTrace& trace_;
  std::vector<std::vector<Chronon>> predicted_;
};

}  // namespace webmon

#endif  // WEBMON_TRACE_UPDATE_MODEL_H_
