#include "trace/auction_trace.h"

#include <algorithm>
#include <cmath>

#include "util/poisson.h"

namespace webmon {

StatusOr<EventTrace> GenerateAuctionTrace(const AuctionTraceOptions& options,
                                          Rng& rng) {
  if (options.num_auctions == 0) {
    return Status::InvalidArgument("need at least one auction");
  }
  if (options.num_chronons <= 1) {
    return Status::InvalidArgument("epoch too short for auctions");
  }
  if (options.target_total_bids < 0) {
    return Status::InvalidArgument("target_total_bids must be >= 0");
  }
  if (options.sniping_boost < 1.0) {
    return Status::InvalidArgument("sniping_boost must be >= 1");
  }
  if (options.sniping_fraction < 0.0 || options.sniping_fraction > 1.0) {
    return Status::InvalidArgument("sniping_fraction must be in [0,1]");
  }

  EventTrace trace(options.num_auctions, options.num_chronons);
  const double k = static_cast<double>(options.num_chronons);
  const double bids_per_auction =
      static_cast<double>(options.target_total_bids) /
      static_cast<double>(options.num_auctions);

  for (uint32_t a = 0; a < options.num_auctions; ++a) {
    // Stagger the start; the auction runs to the end of the epoch (all the
    // paper's auctions are full three-day auctions observed concurrently).
    const double start =
        rng.UniformDouble(0.0, std::max(0.0, options.stagger_fraction) * k);
    const double duration = k - start;
    if (duration <= 1.0) continue;
    const double snipe_len = options.sniping_fraction * duration;
    const double snipe_begin = k - snipe_len;

    // Choose the base rate so the expected bid count per auction matches:
    // base * (duration - snipe_len) + base * boost * snipe_len = target.
    const double effective =
        (duration - snipe_len) + options.sniping_boost * snipe_len;
    const double base = bids_per_auction / effective;
    const double max_rate = base * options.sniping_boost;

    auto rate = [&](double t) {
      if (t < start) return 0.0;
      return (t >= snipe_begin) ? base * options.sniping_boost : base;
    };
    WEBMON_ASSIGN_OR_RETURN(std::vector<double> arrivals,
                            ThinnedPoissonArrivals(rate, max_rate, k, rng));
    for (Chronon t : BucketArrivals(arrivals, k, options.num_chronons)) {
      WEBMON_RETURN_IF_ERROR(trace.AddEvent(a, t));
    }
  }
  trace.Finalize();
  return trace;
}

}  // namespace webmon
