// Trace analysis: the statistics the paper's workload modeling relies on.
//
// Section II cites feed-refresh statistics (55% of feeds update hourly) and
// Section V-A.2 estimates the Zipf skew of Web-feed activity (alpha ~ 1.37).
// TraceStats computes the same descriptors for any EventTrace: per-resource
// event counts, inter-update gap statistics, activity concentration, and a
// least-squares Zipf-exponent fit of the activity distribution — used for
// calibrating synthetic traces and by the CLI's `inspect` command.

#ifndef WEBMON_TRACE_TRACE_STATS_H_
#define WEBMON_TRACE_TRACE_STATS_H_

#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/stats.h"

namespace webmon {

/// Descriptive statistics of one trace.
struct TraceStats {
  int64_t total_events = 0;
  uint32_t num_resources = 0;
  Chronon num_chronons = 0;
  /// Resources with at least one event.
  uint32_t active_resources = 0;
  /// Distribution of per-resource event counts.
  RunningStats events_per_resource;
  /// Distribution of inter-update gaps (pooled over resources with >= 2
  /// events).
  RunningStats inter_update_gap;
  /// Fraction of all events on the busiest 10% of resources (activity
  /// concentration; 0.1 means perfectly uniform).
  double top_decile_share = 0.0;
  /// Least-squares Zipf exponent fitted to the rank-ordered activity
  /// distribution (0 for degenerate traces).
  double zipf_exponent = 0.0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Computes statistics for `trace`.
TraceStats ComputeTraceStats(const EventTrace& trace);

/// Least-squares slope fit of log(count) vs log(rank) over the non-zero,
/// descending `counts`; returns the Zipf exponent (>= 0). Exposed for
/// tests.
double FitZipfExponent(const std::vector<int64_t>& counts);

}  // namespace webmon

#endif  // WEBMON_TRACE_TRACE_STATS_H_
