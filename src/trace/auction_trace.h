// Synthetic eBay-style auction trace (substitute for the paper's real trace).
//
// The paper used a real trace of 732 three-day eBay laptop auctions with
// 11,150 bids total. We cannot redistribute that trace, so we synthesize an
// equivalent: each auction is a resource whose bid arrivals form a
// non-homogeneous Poisson process over the auction's lifetime, with an
// intensity ramp in the closing phase ("bid sniping", a well-documented
// property of eBay auctions). The scheduling problem only observes update
// event times per resource, so a generator matching the trace's count,
// horizon, and end-of-auction burstiness exercises the identical code path.

#ifndef WEBMON_TRACE_AUCTION_TRACE_H_
#define WEBMON_TRACE_AUCTION_TRACE_H_

#include "trace/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace webmon {

/// Parameters calibrated to the paper's trace by default.
struct AuctionTraceOptions {
  /// Number of auctions (one resource each).
  uint32_t num_auctions = 732;
  /// Expected total bids across all auctions.
  int64_t target_total_bids = 11150;
  /// Epoch length. Default: 3 days at 5-minute chronons.
  Chronon num_chronons = 864;
  /// Auctions start staggered in [0, stagger_fraction * K).
  double stagger_fraction = 0.25;
  /// Intensity multiplier during the closing phase.
  double sniping_boost = 5.0;
  /// Fraction of the auction lifetime forming the closing phase.
  double sniping_fraction = 0.1;
};

/// Generates one auction trace; deterministic given `rng` state.
StatusOr<EventTrace> GenerateAuctionTrace(const AuctionTraceOptions& options,
                                          Rng& rng);

}  // namespace webmon

#endif  // WEBMON_TRACE_AUCTION_TRACE_H_
