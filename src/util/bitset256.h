// Fixed-width 256-bit set with value semantics.
//
// Built for dense bit-mask state keys — the exact offline solver keys its
// memo and visited tables on the captured-EI set, which outgrew a single
// uint64_t once instances above 64 EIs became tractable. Compared to
// std::bitset this adds the operations the search actually needs (subset
// tests, masked popcount, ascending set-bit iteration, hashing) and stays
// trivially copyable.

#ifndef WEBMON_UTIL_BITSET256_H_
#define WEBMON_UTIL_BITSET256_H_

#include <cstddef>
#include <cstdint>

#include "util/check.h"

namespace webmon {

class Bitset256 {
 public:
  static constexpr int kBits = 256;
  static constexpr int kWords = 4;

  constexpr Bitset256() = default;

  void Set(int i) {
    WEBMON_DCHECK(i >= 0 && i < kBits) << "bit index out of range";
    w_[WordOf(i)] |= BitOf(i);
  }
  void Reset(int i) {
    WEBMON_DCHECK(i >= 0 && i < kBits) << "bit index out of range";
    w_[WordOf(i)] &= ~BitOf(i);
  }
  bool Test(int i) const {
    WEBMON_DCHECK(i >= 0 && i < kBits) << "bit index out of range";
    return (w_[WordOf(i)] & BitOf(i)) != 0;
  }

  bool None() const { return (w_[0] | w_[1] | w_[2] | w_[3]) == 0; }
  bool Any() const { return !None(); }

  int Count() const {
    int n = 0;
    for (uint64_t w : w_) n += __builtin_popcountll(w);
    return n;
  }

  /// popcount(*this & mask) without materializing the intersection.
  int CountAnd(const Bitset256& mask) const {
    int n = 0;
    for (int i = 0; i < kWords; ++i) {
      n += __builtin_popcountll(w_[i] & mask.w_[i]);
    }
    return n;
  }

  /// True iff every set bit of *this is also set in `other`.
  bool IsSubsetOf(const Bitset256& other) const {
    for (int i = 0; i < kWords; ++i) {
      if ((w_[i] & ~other.w_[i]) != 0) return false;
    }
    return true;
  }

  /// Calls fn(i) for every set bit, in ascending bit order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (int wi = 0; wi < kWords; ++wi) {
      uint64_t m = w_[wi];
      while (m != 0) {
        const int b = __builtin_ctzll(m);
        m &= m - 1;
        fn(wi * 64 + b);
      }
    }
  }

  Bitset256& operator|=(const Bitset256& o) {
    for (int i = 0; i < kWords; ++i) w_[i] |= o.w_[i];
    return *this;
  }
  Bitset256& operator&=(const Bitset256& o) {
    for (int i = 0; i < kWords; ++i) w_[i] &= o.w_[i];
    return *this;
  }

  friend Bitset256 operator|(Bitset256 a, const Bitset256& b) {
    a |= b;
    return a;
  }
  friend Bitset256 operator&(Bitset256 a, const Bitset256& b) {
    a &= b;
    return a;
  }
  friend bool operator==(const Bitset256& a, const Bitset256& b) {
    return a.w_[0] == b.w_[0] && a.w_[1] == b.w_[1] && a.w_[2] == b.w_[2] &&
           a.w_[3] == b.w_[3];
  }
  friend bool operator!=(const Bitset256& a, const Bitset256& b) {
    return !(a == b);
  }

  /// Hasher for unordered containers (SplitMix64-style finalizer per word,
  /// folded with distinct odd multipliers so word position matters).
  struct Hash {
    size_t operator()(const Bitset256& s) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (int i = 0; i < kWords; ++i) {
        uint64_t x = s.w_[i] + 0x9e3779b97f4a7c15ULL *
                                   static_cast<uint64_t>(i + 1);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        h = (h * 0x100000001b3ULL) ^ x;
      }
      return static_cast<size_t>(h);
    }
  };

 private:
  static constexpr int WordOf(int i) { return i >> 6; }
  static constexpr uint64_t BitOf(int i) { return uint64_t{1} << (i & 63); }

  uint64_t w_[kWords] = {0, 0, 0, 0};
};

}  // namespace webmon

#endif  // WEBMON_UTIL_BITSET256_H_
