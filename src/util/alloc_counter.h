// Process-wide heap-allocation counting for the allocation-regression tests
// and the sustained-throughput bench (docs/PERFORMANCE.md "Memory &
// sustained throughput").
//
// The counters are only live in binaries that opt in by expanding
// WEBMON_DEFINE_COUNTING_OPERATOR_NEW() in exactly one translation unit:
// the macro defines replacement global operator new/delete that bump the
// counters and forward to malloc/free. Binaries that do not expand the
// macro link the standard operators and GlobalAllocCounters() stays at
// zero. Keep the macro out of the main test binary — replacing global
// operator new is a whole-binary decision and belongs in small, dedicated
// executables (webmon_alloc_test, bench_sustained).

#ifndef WEBMON_UTIL_ALLOC_COUNTER_H_
#define WEBMON_UTIL_ALLOC_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace webmon {

/// Cumulative heap churn since process start. `allocations`/`bytes` count
/// every successful operator new (they never decrease — this measures
/// churn, not live size); `frees` counts operator delete calls with a
/// non-null pointer.
struct AllocCounters {
  std::atomic<int64_t> allocations{0};
  std::atomic<int64_t> bytes{0};
  std::atomic<int64_t> frees{0};
};

inline AllocCounters& GlobalAllocCounters() {
  static AllocCounters counters;
  return counters;
}

/// Point-in-time snapshot for windowed deltas (counters are monotone).
struct AllocSnapshot {
  int64_t allocations = 0;
  int64_t bytes = 0;
  int64_t frees = 0;
};

inline AllocSnapshot SnapshotAllocCounters() {
  AllocCounters& c = GlobalAllocCounters();
  return {c.allocations.load(std::memory_order_relaxed),
          c.bytes.load(std::memory_order_relaxed),
          c.frees.load(std::memory_order_relaxed)};
}

namespace alloc_counter_internal {

inline void* CountedAlloc(std::size_t size, std::size_t align) {
  // operator new must return a distinct pointer for size 0.
  if (size == 0) size = 1;
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(size);
  } else {
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t rounded = (size + align - 1) / align * align;
    p = std::aligned_alloc(align, rounded);
  }
  if (p != nullptr) {
    AllocCounters& c = GlobalAllocCounters();
    c.allocations.fetch_add(1, std::memory_order_relaxed);
    c.bytes.fetch_add(static_cast<int64_t>(size), std::memory_order_relaxed);
  }
  return p;
}

inline void CountedFree(void* p) {
  if (p == nullptr) return;
  GlobalAllocCounters().frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace alloc_counter_internal
}  // namespace webmon

// Expand once per opted-in binary, at namespace scope in a .cc file. The
// throwing forms loop through std::get_new_handler like the standard ones
// so OOM behavior stays conforming.
#define WEBMON_DEFINE_COUNTING_OPERATOR_NEW()                               \
  namespace webmon_alloc_counter_detail {                                   \
  inline void* ThrowingAlloc(std::size_t size, std::size_t align) {         \
    for (;;) {                                                              \
      void* p = ::webmon::alloc_counter_internal::CountedAlloc(size, align);\
      if (p != nullptr) return p;                                           \
      std::new_handler handler = std::get_new_handler();                    \
      if (handler == nullptr) throw std::bad_alloc();                       \
      handler();                                                            \
    }                                                                       \
  }                                                                         \
  }                                                                         \
  void* operator new(std::size_t size) {                                    \
    return webmon_alloc_counter_detail::ThrowingAlloc(                      \
        size, alignof(std::max_align_t));                                   \
  }                                                                         \
  void* operator new[](std::size_t size) {                                  \
    return webmon_alloc_counter_detail::ThrowingAlloc(                      \
        size, alignof(std::max_align_t));                                   \
  }                                                                         \
  void* operator new(std::size_t size, std::align_val_t align) {            \
    return webmon_alloc_counter_detail::ThrowingAlloc(                      \
        size, static_cast<std::size_t>(align));                             \
  }                                                                         \
  void* operator new[](std::size_t size, std::align_val_t align) {          \
    return webmon_alloc_counter_detail::ThrowingAlloc(                      \
        size, static_cast<std::size_t>(align));                             \
  }                                                                         \
  void* operator new(std::size_t size, const std::nothrow_t&) noexcept {    \
    return ::webmon::alloc_counter_internal::CountedAlloc(                  \
        size, alignof(std::max_align_t));                                   \
  }                                                                         \
  void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {  \
    return ::webmon::alloc_counter_internal::CountedAlloc(                  \
        size, alignof(std::max_align_t));                                   \
  }                                                                         \
  void* operator new(std::size_t size, std::align_val_t align,              \
                     const std::nothrow_t&) noexcept {                      \
    return ::webmon::alloc_counter_internal::CountedAlloc(                  \
        size, static_cast<std::size_t>(align));                             \
  }                                                                         \
  void* operator new[](std::size_t size, std::align_val_t align,            \
                       const std::nothrow_t&) noexcept {                    \
    return ::webmon::alloc_counter_internal::CountedAlloc(                  \
        size, static_cast<std::size_t>(align));                             \
  }                                                                         \
  void operator delete(void* p) noexcept {                                  \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  void operator delete[](void* p) noexcept {                                \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  void operator delete(void* p, std::size_t) noexcept {                     \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  void operator delete[](void* p, std::size_t) noexcept {                   \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  void operator delete(void* p, std::align_val_t) noexcept {                \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  void operator delete[](void* p, std::align_val_t) noexcept {              \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {   \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  void operator delete(void* p, const std::nothrow_t&) noexcept {           \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  void operator delete[](void* p, const std::nothrow_t&) noexcept {         \
    ::webmon::alloc_counter_internal::CountedFree(p);                       \
  }                                                                         \
  static_assert(true, "require a trailing semicolon")

#endif  // WEBMON_UTIL_ALLOC_COUNTER_H_
