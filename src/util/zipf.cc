#include "util/zipf.h"

#include <algorithm>
#include <cmath>

namespace webmon {

StatusOr<ZipfSampler> ZipfSampler::Create(uint32_t n, double theta) {
  if (n == 0) {
    return Status::InvalidArgument("ZipfSampler: n must be positive");
  }
  if (theta < 0.0) {
    return Status::InvalidArgument("ZipfSampler: theta must be >= 0");
  }
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (uint32_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf[i - 1] = sum;
  }
  for (auto& c : cdf) c /= sum;
  cdf.back() = 1.0;  // guard against floating point shortfall
  return ZipfSampler(n, theta, std::move(cdf));
}

ZipfSampler::ZipfSampler(uint32_t n, double theta, std::vector<double> cdf)
    : n_(n), theta_(theta), cdf_(std::move(cdf)) {}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Probability(uint32_t i) const {
  if (i == 0 || i > n_) return 0.0;
  const double lower = (i == 1) ? 0.0 : cdf_[i - 2];
  return cdf_[i - 1] - lower;
}

}  // namespace webmon
