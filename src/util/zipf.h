// Zipf-distributed sampling over {1, ..., n}.
//
// The paper's workload generator uses two Zipf distributions: Zipf(beta, k)
// for the rank (complexity) of each profile and Zipf(alpha, n) for the
// resources each CEI refers to (Section V-A.2). theta = 0 degenerates to the
// uniform distribution U[1, n]; larger theta skews probability mass toward
// small indices ("popular" items).

#ifndef WEBMON_UTIL_ZIPF_H_
#define WEBMON_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace webmon {

/// Samples from P(X = i) = (1/i^theta) / H(n, theta) for i in {1..n}.
///
/// Uses a precomputed CDF with binary search: construction is O(n) and each
/// sample is O(log n), which is exact (no approximation) and fast enough for
/// every workload size in the paper (n <= 2000 resources).
class ZipfSampler {
 public:
  /// Creates a sampler; fails if n == 0 or theta < 0.
  static StatusOr<ZipfSampler> Create(uint32_t n, double theta);

  /// Draws an index in {1, ..., n} (1-based, matching the paper's notation).
  uint32_t Sample(Rng& rng) const;

  /// Draws a 0-based index in {0, ..., n-1}.
  uint32_t SampleIndex(Rng& rng) const { return Sample(rng) - 1; }

  /// Exact probability of drawing value `i` (1-based).
  double Probability(uint32_t i) const;

  uint32_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  ZipfSampler(uint32_t n, double theta, std::vector<double> cdf);

  uint32_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i+1); cdf_.back() == 1.
};

}  // namespace webmon

#endif  // WEBMON_UTIL_ZIPF_H_
