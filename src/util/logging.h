// Minimal leveled logging.
//
// webmon is a library, so logging is conservative: everything goes to stderr
// through a process-wide level filter, with no dynamic allocation on the
// filtered-out path beyond the stream expression itself.

#ifndef WEBMON_UTIL_LOGGING_H_
#define WEBMON_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace webmon {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum level that will be emitted (default kWarning).
void SetLogLevel(LogLevel level);
/// Returns the current minimum level.
LogLevel GetLogLevel();

namespace internal_logging {

/// Accumulates one log statement and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the stream expression when the statement is filtered out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define WEBMON_LOG(level)                                                  \
  (::webmon::LogLevel::level < ::webmon::GetLogLevel())                    \
      ? void(0)                                                            \
      : void(::webmon::internal_logging::LogMessage(                       \
                 ::webmon::LogLevel::level, __FILE__, __LINE__)            \
             << "")

// WEBMON_LOG is statement-shaped via the ternary; provide a stream-shaped
// variant for the common `WEBMON_LOG_INFO << ...` usage.
#define WEBMON_LOG_STREAM(level)                        \
  ::webmon::internal_logging::LogMessage(               \
      ::webmon::LogLevel::level, __FILE__, __LINE__)

#define WEBMON_LOG_DEBUG                                          \
  if (::webmon::LogLevel::kDebug < ::webmon::GetLogLevel()) {     \
  } else                                                          \
    WEBMON_LOG_STREAM(kDebug)
#define WEBMON_LOG_INFO                                           \
  if (::webmon::LogLevel::kInfo < ::webmon::GetLogLevel()) {      \
  } else                                                          \
    WEBMON_LOG_STREAM(kInfo)
#define WEBMON_LOG_WARNING                                        \
  if (::webmon::LogLevel::kWarning < ::webmon::GetLogLevel()) {   \
  } else                                                          \
    WEBMON_LOG_STREAM(kWarning)
#define WEBMON_LOG_ERROR                                          \
  if (::webmon::LogLevel::kError < ::webmon::GetLogLevel()) {     \
  } else                                                          \
    WEBMON_LOG_STREAM(kError)

}  // namespace webmon

#endif  // WEBMON_UTIL_LOGGING_H_
