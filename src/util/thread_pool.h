// Fixed-size worker pool for deterministic fork-join parallelism.
//
// The scheduler's sharded ranking phase (docs/PERFORMANCE.md) is the primary
// client: ParallelFor(n, fn) runs fn(0) .. fn(n-1) across the workers plus
// the calling thread and returns once every task has finished. Determinism
// is the caller's side of the contract: tasks must write only their own
// output slots, so the combined result is independent of which worker ran
// which task and of interleaving. The pool adds no ordering of its own.
//
// This is the only file in the repository allowed to spawn raw std::thread
// (webmon_lint rule `thread`); everything concurrent goes through here so
// sizing, shutdown, and TSan coverage stay centralized.

#ifndef WEBMON_UTIL_THREAD_POOL_H_
#define WEBMON_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace webmon {

/// A fixed pool of worker threads executing fork-join parallel loops.
/// Construction spawns the workers once; ParallelFor reuses them, so the
/// per-call overhead is one wakeup, not thread creation.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the thread calling ParallelFor is the
  /// remaining lane, so `num_threads` tasks make progress concurrently.
  /// Values below 1 are treated as 1 (no workers; ParallelFor runs inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency: workers + the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(0) .. fn(num_tasks - 1), each exactly once, distributed over
  /// the workers and the calling thread; returns after the last task
  /// completes. All writes made by the tasks happen-before the return.
  /// Not reentrant: fn must not call ParallelFor on the same pool, and only
  /// one thread may drive the pool at a time (the scheduler's single
  /// chronon loop satisfies both).
  void ParallelFor(int num_tasks, const std::function<void(int)>& fn);

  /// Hardware concurrency clamped to at least 1 (the conventional default
  /// for a `--threads 0` style "use all cores" knob).
  static int DefaultThreads();

 private:
  void WorkerLoop();

  // Written in the constructor, joined in the destructor; never touched
  // while workers run, so no guard is needed (or possible — the workers
  // themselves would need it).
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;  // signaled when a job is published
  CondVar done_cv_;  // signaled when a worker leaves a job
  // Current job, published under mu_ with a bumped epoch; workers adopt the
  // newest job exactly once per wakeup, so a worker can never mix one job's
  // task counter with another job's function.
  const std::function<void(int)>* job_ GUARDED_BY(mu_) = nullptr;
  int job_tasks_ GUARDED_BY(mu_) = 0;
  uint64_t job_epoch_ GUARDED_BY(mu_) = 0;
  int workers_in_job_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  // Next unclaimed task index of the current job; tasks are claimed with
  // fetch_add so each index runs exactly once. Deliberately atomic rather
  // than GUARDED_BY(mu_): claiming must not serialize the workers.
  std::atomic<int> next_task_{0};
};

}  // namespace webmon

#endif  // WEBMON_UTIL_THREAD_POOL_H_
