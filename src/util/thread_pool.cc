#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace webmon {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(num_threads, 1) - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::ParallelFor(int num_tasks,
                             const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (int t = 0; t < num_tasks; ++t) fn(t);
    return;
  }
  {
    MutexLock lock(mu_);
    WEBMON_CHECK(job_ == nullptr) << "ParallelFor is not reentrant";
    job_ = &fn;
    job_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    ++job_epoch_;
  }
  work_cv_.NotifyAll();
  // The calling thread is a full lane: claim and run tasks like a worker.
  for (int t = next_task_.fetch_add(1); t < num_tasks;
       t = next_task_.fetch_add(1)) {
    fn(t);
  }
  // All tasks are claimed; wait for workers still running theirs. Workers
  // that never woke up for this job are not in workers_in_job_ and will
  // find the task counter exhausted when they do wake.
  MutexLock lock(mu_);
  while (workers_in_job_ != 0) done_cv_.Wait(mu_);
  job_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    int num_tasks = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && job_epoch_ == seen_epoch) work_cv_.Wait(mu_);
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
      num_tasks = job_tasks_;
      ++workers_in_job_;
    }
    for (int t = next_task_.fetch_add(1); t < num_tasks;
         t = next_task_.fetch_add(1)) {
      (*job)(t);
    }
    {
      MutexLock lock(mu_);
      --workers_in_job_;
    }
    done_cv_.NotifyOne();
  }
}

}  // namespace webmon
