// Small string helpers shared across modules.

#ifndef WEBMON_UTIL_STRING_UTIL_H_
#define WEBMON_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace webmon {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Case-insensitive substring test; used by the example applications for the
/// paper's `F1 CONTAINS %oil%` style predicates.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Parses a signed decimal integer; returns false on any non-numeric input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double; returns false on any non-numeric input.
bool ParseDouble(std::string_view s, double* out);

}  // namespace webmon

#endif  // WEBMON_UTIL_STRING_UTIL_H_
