#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace webmon {
namespace internal_check {

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
          << " ";
}

CheckFailure::CheckFailure(const char* file, int line,
                           const std::string& condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
          << " ";
}

CheckFailure::~CheckFailure() {
  // fputs + fflush rather than std::cerr: the process is about to die, and
  // stdio survives more kinds of corruption than iostreams.
  const std::string message = stream_.str();
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace webmon
