// Runtime contract checks: WEBMON_CHECK / WEBMON_DCHECK and friends.
//
// The library's hot invariants (budgets never exceeded, probes only inside
// EI windows, preemption legality, ...) are programming contracts, not
// recoverable conditions, so violating them aborts the process with a
// file:line diagnostic instead of returning a Status. Anything a caller can
// legitimately get wrong (user input, file contents, late arrivals) keeps
// using Status; checks are strictly for "this cannot happen unless the code
// is broken".
//
//   WEBMON_CHECK(total >= 0) << "after compaction of " << n << " entries";
//   WEBMON_CHECK_LE(used, capacity);
//   WEBMON_DCHECK_EQ(a, b);  // compiled out in NDEBUG builds
//   WEBMON_CHECK_OK(schedule.AddProbe(r, t));
//
// CHECK is always on (all build types); DCHECK vanishes under NDEBUG unless
// WEBMON_FORCE_DCHECK is defined, but its condition stays syntax-checked.
// The comparison forms print both operand values on failure.

#ifndef WEBMON_UTIL_CHECK_H_
#define WEBMON_UTIL_CHECK_H_

#include <memory>
#include <sstream>
#include <string>

#include "util/status.h"

namespace webmon {
namespace internal_check {

/// Accumulates the failure diagnostic for one violated check and aborts the
/// process when the statement ends (i.e. after any streamed-in context).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  CheckFailure(const char* file, int line, const std::string& condition);
  ~CheckFailure();  // prints to stderr and aborts; never returns normally

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Outcome of a binary comparison check: empty on success, otherwise the
/// formatted "a op b (va vs vb)" description.
class CheckOpResult {
 public:
  CheckOpResult() = default;  // success
  explicit CheckOpResult(std::string message)
      : message_(std::make_unique<std::string>(std::move(message))) {}

  explicit operator bool() const { return message_ != nullptr; }
  const std::string& message() const { return *message_; }

 private:
  std::unique_ptr<std::string> message_;
};

template <typename A, typename B>
std::string FormatCheckOp(const char* expr, const A& a, const B& b) {
  std::ostringstream os;
  os << expr << " (" << a << " vs " << b << ")";
  return os.str();
}

#define WEBMON_CHECK_DEFINE_OP_(name, op)                        \
  template <typename A, typename B>                              \
  CheckOpResult name(const A& a, const B& b, const char* expr) { \
    if (a op b) return CheckOpResult();                          \
    return CheckOpResult(FormatCheckOp(expr, a, b));             \
  }

WEBMON_CHECK_DEFINE_OP_(CheckEqImpl, ==)
WEBMON_CHECK_DEFINE_OP_(CheckNeImpl, !=)
WEBMON_CHECK_DEFINE_OP_(CheckLtImpl, <)
WEBMON_CHECK_DEFINE_OP_(CheckLeImpl, <=)
WEBMON_CHECK_DEFINE_OP_(CheckGtImpl, >)
WEBMON_CHECK_DEFINE_OP_(CheckGeImpl, >=)

#undef WEBMON_CHECK_DEFINE_OP_

/// Lets a check expression terminate with void in the success arm of the
/// ternary below (operator precedence: & binds looser than <<).
struct CheckVoidify {
  void operator&(const CheckFailure&) {}
};

}  // namespace internal_check
}  // namespace webmon

/// Aborts with a file:line diagnostic unless `condition` is true. Streaming
/// extra context is allowed: WEBMON_CHECK(x) << "details";
#define WEBMON_CHECK(condition)                              \
  (condition) ? void(0)                                      \
              : ::webmon::internal_check::CheckVoidify() &   \
                    ::webmon::internal_check::CheckFailure(  \
                        __FILE__, __LINE__, #condition)

// The switch wrapper makes the expansion a single statement immune to the
// dangling-else ambiguity, while still letting `<< extra` attach to the
// failure object.
#define WEBMON_CHECK_OP_(impl, op, a, b)                                   \
  switch (0)                                                               \
  case 0:                                                                  \
  default:                                                                 \
    if (::webmon::internal_check::CheckOpResult webmon_check_result =      \
            ::webmon::internal_check::impl((a), (b), #a " " #op " " #b);   \
        !webmon_check_result) {                                            \
    } else                                                                 \
      ::webmon::internal_check::CheckFailure(__FILE__, __LINE__,           \
                                             webmon_check_result.message())

#define WEBMON_CHECK_EQ(a, b) WEBMON_CHECK_OP_(CheckEqImpl, ==, a, b)
#define WEBMON_CHECK_NE(a, b) WEBMON_CHECK_OP_(CheckNeImpl, !=, a, b)
#define WEBMON_CHECK_LT(a, b) WEBMON_CHECK_OP_(CheckLtImpl, <, a, b)
#define WEBMON_CHECK_LE(a, b) WEBMON_CHECK_OP_(CheckLeImpl, <=, a, b)
#define WEBMON_CHECK_GT(a, b) WEBMON_CHECK_OP_(CheckGtImpl, >, a, b)
#define WEBMON_CHECK_GE(a, b) WEBMON_CHECK_OP_(CheckGeImpl, >=, a, b)

/// Aborts (printing the status) unless `expr` evaluates to an OK Status.
#define WEBMON_CHECK_OK(expr)                                              \
  switch (0)                                                               \
  case 0:                                                                  \
  default:                                                                 \
    if (::webmon::Status webmon_check_status = (expr);                     \
        webmon_check_status.ok()) {                                        \
    } else                                                                 \
      ::webmon::internal_check::CheckFailure(                              \
          __FILE__, __LINE__, #expr " is OK")                              \
          << "status: " << webmon_check_status

#if defined(NDEBUG) && !defined(WEBMON_FORCE_DCHECK)
// Debug checks vanish from optimized builds; `while (false)` keeps the
// condition compiled (so it cannot rot) without ever evaluating it.
#define WEBMON_DCHECK(condition) \
  while (false) WEBMON_CHECK(condition)
#define WEBMON_DCHECK_EQ(a, b) \
  while (false) WEBMON_CHECK_EQ(a, b)
#define WEBMON_DCHECK_NE(a, b) \
  while (false) WEBMON_CHECK_NE(a, b)
#define WEBMON_DCHECK_LT(a, b) \
  while (false) WEBMON_CHECK_LT(a, b)
#define WEBMON_DCHECK_LE(a, b) \
  while (false) WEBMON_CHECK_LE(a, b)
#define WEBMON_DCHECK_GT(a, b) \
  while (false) WEBMON_CHECK_GT(a, b)
#define WEBMON_DCHECK_GE(a, b) \
  while (false) WEBMON_CHECK_GE(a, b)
#define WEBMON_DCHECK_OK(expr) \
  while (false) WEBMON_CHECK_OK(expr)
#else
#define WEBMON_DCHECK(condition) WEBMON_CHECK(condition)
#define WEBMON_DCHECK_EQ(a, b) WEBMON_CHECK_EQ(a, b)
#define WEBMON_DCHECK_NE(a, b) WEBMON_CHECK_NE(a, b)
#define WEBMON_DCHECK_LT(a, b) WEBMON_CHECK_LT(a, b)
#define WEBMON_DCHECK_LE(a, b) WEBMON_CHECK_LE(a, b)
#define WEBMON_DCHECK_GT(a, b) WEBMON_CHECK_GT(a, b)
#define WEBMON_DCHECK_GE(a, b) WEBMON_CHECK_GE(a, b)
#define WEBMON_DCHECK_OK(expr) WEBMON_CHECK_OK(expr)
#endif

/// True in builds where WEBMON_DCHECK is active (used by tests to skip
/// death expectations in release builds).
#if defined(NDEBUG) && !defined(WEBMON_FORCE_DCHECK)
#define WEBMON_DCHECK_IS_ON() 0
#else
#define WEBMON_DCHECK_IS_ON() 1
#endif

#endif  // WEBMON_UTIL_CHECK_H_
