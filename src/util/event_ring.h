// Flat chunked event ring keyed by chronon, backed by an Arena.
//
// The online scheduler used to bucket future events (activations, expiries,
// pushes) as vector<vector<T>> indexed by chronon — every bucket was its own
// heap allocation, cleared-and-shrunk after draining, so steady-state ticks
// churned the allocator. EventRing replaces the inner vectors with chains of
// fixed-size chunks carved from a shared Arena: Push appends to the bucket's
// tail chunk, Drain visits items in insertion order and recycles the chunks
// onto a free list, and after warm-up the chunk population stabilizes and no
// call touches the heap (the Arena grows only on high-water marks).
//
// Items cannot be erased by key (chunks hold no per-item index), but a
// caller that invalidates items logically (e.g. CEI cancellation) can
// NoteDead each one and call CompactIfStale: once half a bucket is dead it
// is rewritten in place — stable, allocation-free, amortized O(1) per dead
// item — so cancel-heavy runs don't drag garbage to the drain.
//
// Determinism: per-bucket visit order is exactly push order, independent of
// chunk placement (and of whether any compaction triggered). Not
// thread-safe — single-owner, like the Arena.

#ifndef WEBMON_UTIL_EVENT_RING_H_
#define WEBMON_UTIL_EVENT_RING_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/arena.h"
#include "util/check.h"

namespace webmon {

template <typename T>
class EventRing {
  static_assert(std::is_trivially_copyable<T>::value &&
                    std::is_trivially_destructible<T>::value,
                "EventRing items live in raw arena chunks");

 public:
  // ~512-byte chunks: big enough to amortize the link hop, small enough
  // that sparse buckets don't waste the arena.
  static constexpr size_t kChunkCapacity =
      sizeof(T) >= 496 ? 1 : 496 / sizeof(T);

  EventRing(Arena* arena, size_t num_buckets)
      : arena_(arena), buckets_(num_buckets) {
    WEBMON_DCHECK(arena != nullptr) << "EventRing needs a backing arena";
  }

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  size_t num_buckets() const { return buckets_.size(); }

  void Push(int64_t bucket, const T& item) {
    WEBMON_DCHECK(bucket >= 0 &&
                  static_cast<size_t>(bucket) < buckets_.size())
        << "event bucket " << bucket << " out of range";
    Bucket& b = buckets_[static_cast<size_t>(bucket)];
    if (b.tail == nullptr || b.tail->count == kChunkCapacity) {
      Chunk* c = AcquireChunk();
      if (b.tail == nullptr) {
        b.head = c;
      } else {
        b.tail->next = c;
      }
      b.tail = c;
    }
    b.tail->items[b.tail->count++] = item;
    ++b.size;
  }

  bool Empty(int64_t bucket) const {
    return buckets_[static_cast<size_t>(bucket)].size == 0;
  }
  size_t Size(int64_t bucket) const {
    return buckets_[static_cast<size_t>(bucket)].size;
  }

  /// Visits every item in `bucket` in push order, then recycles its chunks.
  /// The visitor may Push into this ring (any bucket, including `bucket`):
  /// a chunk is recycled only after its items are visited, and items pushed
  /// to `bucket` during the drain land on fresh chunks that this call does
  /// not visit — they wait for the next Drain.
  template <typename Fn>
  void Drain(int64_t bucket, Fn&& fn) {
    Bucket& b = buckets_[static_cast<size_t>(bucket)];
    Chunk* c = b.head;
    // Detach first so visitor pushes to this bucket start a new chain.
    b.head = nullptr;
    b.tail = nullptr;
    b.size = 0;
    b.dead = 0;
    while (c != nullptr) {
      Chunk* next = c->next;
      for (uint32_t i = 0; i < c->count; ++i) fn(c->items[i]);
      ReleaseChunk(c);
      c = next;
    }
  }

  /// Records that one item already pushed to `bucket` has logically died
  /// (the drain-time filter will skip it). Fuels CompactIfStale's trigger;
  /// the caller is responsible for counting each dead item at most once.
  void NoteDead(int64_t bucket) {
    WEBMON_DCHECK(bucket >= 0 &&
                  static_cast<size_t>(bucket) < buckets_.size())
        << "event bucket " << bucket << " out of range";
    Bucket& b = buckets_[static_cast<size_t>(bucket)];
    ++b.dead;
    WEBMON_DCHECK_LE(b.dead, b.size)
        << "more dead items noted than bucket " << bucket << " holds";
  }

  /// Dead items noted against `bucket` since its last drain/compaction
  /// (diagnostics, tests).
  uint32_t NotedDead(int64_t bucket) const {
    return buckets_[static_cast<size_t>(bucket)].dead;
  }

  /// When at least half of `bucket`'s items have been NoteDead'd, rewrites
  /// the bucket in place keeping only items for which keep(item) is true —
  /// stable (push order preserved), allocation-free (emptied tail chunks
  /// recycle onto the free list), and amortized O(1) per NoteDead by the
  /// usual halving potential argument: each compaction visits <= 2x the
  /// dead items that paid for it. Returns true iff a compaction ran.
  ///
  /// Draining later sees exactly the same live items in the same order
  /// whether or not a compaction triggered, so the threshold can never
  /// alter a schedule.
  template <typename Keep>
  bool CompactIfStale(int64_t bucket, Keep&& keep) {
    Bucket& b = buckets_[static_cast<size_t>(bucket)];
    if (b.dead == 0 || b.dead * 2 < b.size) return false;
    Chunk* write = b.head;
    uint32_t wi = 0;
    uint32_t kept = 0;
    for (Chunk* c = b.head; c != nullptr; c = c->next) {
      const uint32_t n = c->count;
      for (uint32_t i = 0; i < n; ++i) {
        // Copy out: once write catches up to c, items[wi] aliases items[i].
        const T item = c->items[i];
        if (!keep(item)) continue;
        if (wi == kChunkCapacity) {
          write->count = kChunkCapacity;
          // The write cursor trails the read cursor (kept <= visited), so
          // the next chunk always exists.
          write = write->next;
          wi = 0;
        }
        write->items[wi++] = item;
        ++kept;
      }
    }
    Chunk* excess;
    if (kept == 0) {
      excess = b.head;
      b.head = nullptr;
      b.tail = nullptr;
    } else {
      write->count = wi;
      excess = write->next;
      write->next = nullptr;
      b.tail = write;
    }
    while (excess != nullptr) {
      Chunk* next = excess->next;
      ReleaseChunk(excess);
      excess = next;
    }
    b.size = kept;
    b.dead = 0;
    return true;
  }

  /// Recycles a bucket's chunks without visiting the items (used for
  /// buckets that a chronon gap made unreachable).
  void Discard(int64_t bucket) {
    Bucket& b = buckets_[static_cast<size_t>(bucket)];
    Chunk* c = b.head;
    b.head = nullptr;
    b.tail = nullptr;
    b.size = 0;
    b.dead = 0;
    while (c != nullptr) {
      Chunk* next = c->next;
      ReleaseChunk(c);
      c = next;
    }
  }

  /// Number of chunks ever carved from the arena (monotone; a flat curve
  /// after warm-up is the steady-state no-allocation signal).
  int64_t chunks_allocated() const { return chunks_allocated_; }

 private:
  struct Chunk {
    Chunk* next;
    uint32_t count;
    T items[kChunkCapacity];
  };

  struct Bucket {
    Chunk* head = nullptr;
    Chunk* tail = nullptr;
    uint32_t size = 0;
    // Items noted dead since the last drain/compaction (see NoteDead).
    uint32_t dead = 0;
  };

  Chunk* AcquireChunk() {
    Chunk* c = free_list_;
    if (c != nullptr) {
      free_list_ = c->next;
    } else {
      c = static_cast<Chunk*>(arena_->Allocate(sizeof(Chunk), alignof(Chunk)));
      ++chunks_allocated_;
    }
    c->next = nullptr;
    c->count = 0;
    return c;
  }

  void ReleaseChunk(Chunk* c) {
    c->next = free_list_;
    free_list_ = c;
  }

  Arena* arena_;
  std::vector<Bucket> buckets_;
  Chunk* free_list_ = nullptr;
  int64_t chunks_allocated_ = 0;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_EVENT_RING_H_
