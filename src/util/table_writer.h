// Aligned-column table and CSV emission for bench harnesses.
//
// Every bench binary prints the same rows/series the paper's figure or table
// reports; TableWriter keeps those listings readable on a terminal while the
// CSV form is machine-consumable for plotting.

#ifndef WEBMON_UTIL_TABLE_WRITER_H_
#define WEBMON_UTIL_TABLE_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace webmon {

/// Accumulates rows of string cells and renders them as an aligned text
/// table or as CSV.
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are kept.
  void AddRow(std::vector<std::string> cells);

  // Cell formatting helpers.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(int64_t v);
  static std::string Percent(double fraction, int precision = 1);

  /// Renders with space-padded, left-aligned columns.
  std::string ToText() const;
  /// Renders as RFC-4180-ish CSV (cells containing comma/quote are quoted).
  std::string ToCsv() const;

  /// Convenience: writes ToText() to `os`.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_TABLE_WRITER_H_
