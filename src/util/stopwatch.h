// Wall-clock stopwatch for the runtime-cost experiments (Section V-D).

#ifndef WEBMON_UTIL_STOPWATCH_H_
#define WEBMON_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace webmon {

/// Measures elapsed wall time with steady_clock; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in whole nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_STOPWATCH_H_
