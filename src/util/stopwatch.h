// Wall-clock stopwatch for the runtime-cost experiments (Section V-D), and
// process-memory sampling for the sustained-throughput benches
// (docs/PERFORMANCE.md "Memory & sustained throughput").

#ifndef WEBMON_UTIL_STOPWATCH_H_
#define WEBMON_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#endif

namespace webmon {

/// Measures elapsed wall time with steady_clock; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in whole nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Point-in-time process memory counters. Fields are -1 when the platform
/// does not expose the underlying source (both are Linux/glibc facilities;
/// callers must treat negative values as "unknown", not as data).
struct MemorySample {
  /// Bytes currently handed out by the C heap (glibc mallinfo2 uordblks):
  /// net allocation, so a delta across a steady-state window should be ~0.
  int64_t heap_bytes = -1;
  /// Peak resident set size of the process (/proc/self/status VmHWM).
  int64_t peak_rss_bytes = -1;
};

/// Samples the process's current memory counters. Not async-signal-safe and
/// not cheap (reads procfs) — call it around measured regions, never inside
/// the per-chronon hot path.
inline MemorySample SampleMemory() {
  MemorySample sample;
#if defined(__GLIBC__) && (__GLIBC__ > 2 || \
                           (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 33))
  const struct mallinfo2 mi = mallinfo2();
  sample.heap_bytes = static_cast<int64_t>(mi.uordblks);
#endif
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "re")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      long long kb = 0;
      if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1) {
        sample.peak_rss_bytes = static_cast<int64_t>(kb) * 1024;
        break;
      }
    }
    std::fclose(f);
  }
#endif
  return sample;
}

/// Scoped peak-RSS / heap-delta sampler: captures a MemorySample at
/// construction; the accessors report the change up to the call. Used by
/// bench_sustained and bench_micro to report bytes/chronon alongside
/// timings — wrap exactly the measured steady-state window.
class ScopedMemorySampler {
 public:
  ScopedMemorySampler() : start_(SampleMemory()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = SampleMemory(); }

  /// Net C-heap growth since construction/Reset (bytes); 0 when the heap
  /// counters are unavailable on this platform.
  int64_t HeapDeltaBytes() const {
    const MemorySample now = SampleMemory();
    if (now.heap_bytes < 0 || start_.heap_bytes < 0) return 0;
    return now.heap_bytes - start_.heap_bytes;
  }

  /// Peak-RSS growth since construction/Reset (bytes); 0 when unavailable.
  /// VmHWM is monotone, so this is how much the measured region pushed the
  /// process's high-water mark.
  int64_t PeakRssDeltaBytes() const {
    const MemorySample now = SampleMemory();
    if (now.peak_rss_bytes < 0 || start_.peak_rss_bytes < 0) return 0;
    return now.peak_rss_bytes - start_.peak_rss_bytes;
  }

  /// Absolute current peak RSS (bytes); -1 when unavailable.
  int64_t PeakRssBytes() const { return SampleMemory().peak_rss_bytes; }

 private:
  MemorySample start_;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_STOPWATCH_H_
