#include "util/poisson.h"

#include <cmath>

namespace webmon {

StatusOr<std::vector<double>> HomogeneousPoissonArrivals(double rate,
                                                         double horizon,
                                                         Rng& rng) {
  if (rate < 0.0) {
    return Status::InvalidArgument("Poisson rate must be >= 0");
  }
  if (horizon < 0.0) {
    return Status::InvalidArgument("Poisson horizon must be >= 0");
  }
  std::vector<double> arrivals;
  if (rate == 0.0 || horizon == 0.0) return arrivals;
  double t = 0.0;
  while (true) {
    t += rng.Exponential(rate);
    if (t >= horizon) break;
    arrivals.push_back(t);
  }
  return arrivals;
}

StatusOr<std::vector<double>> ThinnedPoissonArrivals(
    const std::function<double(double)>& rate, double max_rate, double horizon,
    Rng& rng) {
  if (max_rate <= 0.0) {
    return Status::InvalidArgument("thinning max_rate must be > 0");
  }
  if (horizon < 0.0) {
    return Status::InvalidArgument("Poisson horizon must be >= 0");
  }
  std::vector<double> arrivals;
  double t = 0.0;
  while (true) {
    t += rng.Exponential(max_rate);
    if (t >= horizon) break;
    const double r = rate(t);
    if (r > max_rate) {
      return Status::InvalidArgument(
          "intensity function exceeds declared max_rate");
    }
    if (rng.UniformDouble() * max_rate < r) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

std::vector<int64_t> BucketArrivals(const std::vector<double>& arrivals,
                                    double horizon, int64_t num_chronons) {
  std::vector<int64_t> out;
  out.reserve(arrivals.size());
  if (horizon <= 0.0 || num_chronons <= 0) return out;
  const double scale = static_cast<double>(num_chronons) / horizon;
  for (double t : arrivals) {
    if (t < 0.0 || t >= horizon) continue;
    int64_t c = static_cast<int64_t>(t * scale);
    if (c >= num_chronons) c = num_chronons - 1;
    out.push_back(c);
  }
  return out;
}

}  // namespace webmon
