// Poisson process event-time generation.
//
// The synthetic traces in the paper are "generated using a Poisson based
// update model; the parameter lambda controls the update intensity of each
// resource" (Section V-A.1). We provide both homogeneous processes (constant
// rate) and non-homogeneous processes via thinning, which the auction trace
// generator uses to model end-of-auction bid bursts.

#ifndef WEBMON_UTIL_POISSON_H_
#define WEBMON_UTIL_POISSON_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace webmon {

/// Generates arrival times of a homogeneous Poisson process with `rate`
/// events per unit time on [0, horizon). Fails if rate < 0 or horizon < 0.
StatusOr<std::vector<double>> HomogeneousPoissonArrivals(double rate,
                                                         double horizon,
                                                         Rng& rng);

/// Generates arrival times of a non-homogeneous Poisson process on
/// [0, horizon) whose intensity at time t is `rate(t)`, bounded above by
/// `max_rate`, using Lewis-Shedler thinning. Fails if max_rate <= 0 or
/// horizon < 0, or if rate(t) exceeds max_rate at a proposed point.
StatusOr<std::vector<double>> ThinnedPoissonArrivals(
    const std::function<double(double)>& rate, double max_rate, double horizon,
    Rng& rng);

/// Buckets continuous arrival times into integer chronons [0, num_chronons),
/// discarding events outside the range. Multiple events may share a chronon.
std::vector<int64_t> BucketArrivals(const std::vector<double>& arrivals,
                                    double horizon, int64_t num_chronons);

}  // namespace webmon

#endif  // WEBMON_UTIL_POISSON_H_
