#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace webmon {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64Next(sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  uint64_t draw = (span == 0) ? Next64() : UniformU64(span);
  return lo + static_cast<int64_t>(draw);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  // 1 - U is in (0, 1], so the log is finite.
  return -std::log(1.0 - UniformDouble()) / lambda;
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double limit = std::exp(-mean);
    double prod = 1.0;
    int64_t n = -1;
    do {
      prod *= UniformDouble();
      ++n;
    } while (prod > limit);
    return n;
  }
  // For large means, split recursively: Poisson(m) = Poisson(m/2) +
  // Poisson(m - m/2). Depth is logarithmic and each leaf uses Knuth.
  int64_t half = Poisson(mean / 2.0);
  return half + Poisson(mean - mean / 2.0);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace webmon
