#include "util/status.h"

namespace webmon {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  assert(code != StatusCode::kOk && "use Status::OK() for success");
  rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}
Status Status::Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace webmon
