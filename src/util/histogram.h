// Fixed-width histogram for distribution sanity checks and bench reports.

#ifndef WEBMON_UTIL_HISTOGRAM_H_
#define WEBMON_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace webmon {

/// Counts observations in equal-width buckets over [lo, hi); values outside
/// the range land in underflow/overflow counters.
class Histogram {
 public:
  /// Creates a histogram; fails if lo >= hi or num_buckets == 0.
  static StatusOr<Histogram> Create(double lo, double hi,
                                    uint32_t num_buckets);

  /// Records one observation.
  void Add(double x);

  /// Count in bucket `i`; i must be < num_buckets().
  int64_t BucketCount(uint32_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket `i`.
  double BucketLow(uint32_t i) const;

  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int64_t total() const { return total_; }
  uint32_t num_buckets() const { return static_cast<uint32_t>(counts_.size()); }

  /// Value below which `q` (in [0,1]) of in-range observations fall,
  /// interpolated within the bucket; returns lo/hi at the extremes.
  double Quantile(double q) const;

  /// Multi-line ASCII rendering (one row per bucket with a bar).
  std::string ToString(uint32_t max_bar_width = 40) const;

 private:
  Histogram(double lo, double hi, uint32_t num_buckets);

  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_HISTOGRAM_H_
