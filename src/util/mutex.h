// Annotated locking primitives: the only mutex surface of the repository.
//
// webmon::Mutex wraps std::mutex with clang Thread Safety attributes
// (util/thread_annotations.h), so holding-discipline is checked at compile
// time under the `thread-safety` preset: members declared GUARDED_BY(mu_)
// cannot be touched without the lock, *Locked() helpers declare REQUIRES,
// and MutexLock scopes are tracked by the analysis. std::lock_guard on a
// bare std::mutex carries no annotations (libstdc++ is unannotated), which
// is why locking code uses these wrappers instead — the webmon_lint rule
// `rawmutex` enforces that choice repo-wide.
//
// Everything here is a zero-cost veneer: Mutex is exactly a std::mutex,
// MutexLock is exactly a lock_guard, CondVar is exactly a
// condition_variable. Wait() takes the Mutex (REQUIRES it) instead of a
// unique_lock so waiting loops stay visible to the analysis:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);   // ready_ is GUARDED_BY(mu_)

#ifndef WEBMON_UTIL_MUTEX_H_
#define WEBMON_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace webmon {

/// A std::mutex with thread-safety annotations. Prefer MutexLock over
/// manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the lock is held at this point without touching the
  /// mutex. For code that provably runs under the lock but where the
  /// acquisition is not visible to the analysis — e.g. a closure invoked by
  /// SeqMailbox::Push, which locks before calling it.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  /// The wrapped mutex, for interop with std:: waiting primitives (CondVar
  /// below). Does not transfer the capability.
  std::mutex& native_handle() { return mu_; }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock scope over a Mutex (the annotated lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over a webmon::Mutex. Wait() requires the lock and
/// returns with it re-held, so guarded state read in the waiting loop's
/// condition stays inside the analyzed critical section. No predicate
/// overload on purpose: spell the `while (!condition) Wait(mu)` loop out so
/// the condition's guarded reads are analyzed in the caller, not hidden in
/// a lambda the analysis cannot attribute a capability to.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and reacquires `mu`
  /// before returning. Spurious wakeups are possible: always wait in a
  /// condition loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still logically holds the Mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_MUTEX_H_
