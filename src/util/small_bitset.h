// Dynamic bitset with inline storage for up to 64 bits.
//
// CeiState tracks captured/failed flags per execution interval. CEI ranks
// are tiny (the paper's workloads top out around a dozen EIs), but the old
// std::vector<bool> representation cost a heap allocation per flag set and
// a pointer chase per liveness test — measurable at n=10^6 live EIs in the
// rank scan (docs/PERFORMANCE.md). SmallBitset keeps ranks <= 64 in one
// inline word (zero heap) and spills to a vector of words only above that.
//
// operator[] mirrors vector<bool>: the non-const form returns an assignable
// proxy so existing `state.captured[i] = true` call sites keep working.

#ifndef WEBMON_UTIL_SMALL_BITSET_H_
#define WEBMON_UTIL_SMALL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace webmon {

class SmallBitset {
 public:
  SmallBitset() = default;

  /// All bits start clear. Only sizes <= 64 are allocation-free.
  explicit SmallBitset(size_t num_bits) : num_bits_(num_bits) {
    if (num_bits > 64) spill_.assign((num_bits - 1) / 64, 0);
  }

  size_t size() const { return num_bits_; }

  bool Test(size_t i) const {
    WEBMON_DCHECK(i < num_bits_) << "bit index out of range";
    return (word(i >> 6) & Mask(i)) != 0;
  }

  void Set(size_t i, bool value) {
    WEBMON_DCHECK(i < num_bits_) << "bit index out of range";
    uint64_t& w = word(i >> 6);
    if (value) {
      w |= Mask(i);
    } else {
      w &= ~Mask(i);
    }
  }

  /// Assignable reference to a single bit, like vector<bool>::reference.
  class Ref {
   public:
    Ref(SmallBitset* set, size_t i) : set_(set), i_(i) {}
    Ref& operator=(bool value) {
      set_->Set(i_, value);
      return *this;
    }
    Ref& operator=(const Ref& other) { return *this = bool(other); }
    operator bool() const { return set_->Test(i_); }

   private:
    SmallBitset* set_;
    size_t i_;
  };

  bool operator[](size_t i) const { return Test(i); }
  Ref operator[](size_t i) { return Ref(this, i); }

 private:
  static uint64_t Mask(size_t i) { return uint64_t{1} << (i & 63); }

  uint64_t& word(size_t wi) { return wi == 0 ? inline_word_ : spill_[wi - 1]; }
  const uint64_t& word(size_t wi) const {
    return wi == 0 ? inline_word_ : spill_[wi - 1];
  }

  uint64_t inline_word_ = 0;
  size_t num_bits_ = 0;
  std::vector<uint64_t> spill_;  // words 1.. for num_bits_ > 64
};

}  // namespace webmon

#endif  // WEBMON_UTIL_SMALL_BITSET_H_
