// Clang Thread Safety Analysis attribute shims.
//
// These macros expand to clang's `capability`-family attributes when the
// compiler supports them (-Wthread-safety turns them into compile-time lock
// discipline checks) and to nothing everywhere else, so gcc builds are
// unaffected. Annotate with them instead of raw attributes:
//
//   class CAPABILITY("mutex") Mutex { ... };
//   Mutex mu_;
//   int64_t count_ GUARDED_BY(mu_);
//   void FlushLocked() REQUIRES(mu_);
//
// The annotated locking surface of the repo is util/mutex.h (Mutex,
// MutexLock, CondVar); every type owning a lock declares its guarded members
// with GUARDED_BY and splits lock-requiring paths into *Locked() helpers
// annotated REQUIRES. The `thread-safety` CMake preset compiles all of src/
// with -Wthread-safety -Werror=thread-safety under clang; the webmon_lint
// rule `rawmutex` keeps raw std::mutex members out of files that do not
// include this header. See docs/STATIC_ANALYSIS.md ("Thread safety
// annotations").

#ifndef WEBMON_UTIL_THREAD_ANNOTATIONS_H_
#define WEBMON_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define WEBMON_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef WEBMON_THREAD_ANNOTATION
#define WEBMON_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// A type that models a capability (a lock). The string names the kind of
// capability in diagnostics ("mutex").
#define CAPABILITY(x) WEBMON_THREAD_ANNOTATION(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor (MutexLock).
#define SCOPED_CAPABILITY WEBMON_THREAD_ANNOTATION(scoped_lockable)

// Data member access requires holding the named capability.
#define GUARDED_BY(x) WEBMON_THREAD_ANNOTATION(guarded_by(x))

// Dereferencing the annotated pointer requires the named capability.
#define PT_GUARDED_BY(x) WEBMON_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention).
#define ACQUIRED_BEFORE(...) \
  WEBMON_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  WEBMON_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// The function may only be called while holding (exclusively / shared) the
// given capabilities; it does not acquire or release them.
#define REQUIRES(...) \
  WEBMON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  WEBMON_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// The function acquires / releases the given capabilities.
#define ACQUIRE(...) \
  WEBMON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  WEBMON_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  WEBMON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  WEBMON_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  WEBMON_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// The function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  WEBMON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  WEBMON_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// The function must NOT be called while holding the given capabilities
// (it acquires them itself; prevents self-deadlock).
#define EXCLUDES(...) WEBMON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime no-op that injects "this capability is held here" into the
// analysis — the escape hatch for callbacks that run under a lock the
// analysis cannot see across (e.g. SeqMailbox::Push closures).
#define ASSERT_CAPABILITY(x) \
  WEBMON_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  WEBMON_THREAD_ANNOTATION(assert_shared_capability(x))

// The function returns a reference to the named capability; lets accessors
// like SeqMailbox::mu() appear in GUARDED_BY expressions of client code.
#define RETURN_CAPABILITY(x) WEBMON_THREAD_ANNOTATION(lock_returned(x))

// Turns the analysis off for one function (last resort; justify in a
// comment).
#define NO_THREAD_SAFETY_ANALYSIS \
  WEBMON_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // WEBMON_UTIL_THREAD_ANNOTATIONS_H_
