// Minimal command-line flag parsing for the webmon tools and benches.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name` forms. Flags are registered with defaults and help text;
// unknown flags are an error (catching typos beats silently ignoring them).

#ifndef WEBMON_UTIL_FLAGS_H_
#define WEBMON_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace webmon {

/// A set of registered flags plus parsed values. Not thread-safe; build,
/// parse, and query from one thread (tools' main()).
class FlagSet {
 public:
  explicit FlagSet(std::string program_description = "");

  // Registration. Each returns *this for chaining. Names must be unique
  // and non-empty, without the leading "--".
  FlagSet& AddString(const std::string& name, std::string default_value,
                     const std::string& help);
  FlagSet& AddInt(const std::string& name, int64_t default_value,
                  const std::string& help);
  FlagSet& AddDouble(const std::string& name, double default_value,
                     const std::string& help);
  FlagSet& AddBool(const std::string& name, bool default_value,
                   const std::string& help);

  /// Parses argv (skipping argv[0]). Non-flag arguments are collected into
  /// positional(). Fails on unknown flags or unparsable values.
  Status Parse(int argc, const char* const* argv);

  // Typed getters; the flag must have been registered with that type.
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True iff the flag was explicitly set on the command line.
  bool WasSet(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing every flag with its default and help string.
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string value;  // canonical string form
    std::string default_value;
    bool set = false;
  };

  FlagSet& Add(const std::string& name, Type type, std::string default_value,
               const std::string& help);
  Status SetValue(const std::string& name, const std::string& value);
  const Flag* Find(const std::string& name, Type type) const;

  std::string program_description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_FLAGS_H_
