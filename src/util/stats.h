// Streaming statistics accumulators used by experiment harnesses.

#ifndef WEBMON_UTIL_STATS_H_
#define WEBMON_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>

namespace webmon {

/// Accumulates count / mean / variance / min / max in a single pass using
/// Welford's numerically stable update.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator (parallel Welford combine).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  /// Mean of the observations; 0 when empty.
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Minimum observation; +inf when empty.
  double min() const { return min_; }
  /// Maximum observation; -inf when empty.
  double max() const { return max_; }
  /// Sum of the observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Half-width of the ~95% normal confidence interval for the mean
  /// (1.96 * stddev / sqrt(count)); 0 when fewer than two observations.
  double ci95_halfwidth() const;

  /// "mean=... sd=... min=... max=... n=..." for logging.
  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace webmon

#endif  // WEBMON_UTIL_STATS_H_
