// Status and StatusOr: exception-free error handling for webmon.
//
// Modeled on the Status idiom used by RocksDB / Arrow / Abseil: functions
// that can fail return a Status (or a StatusOr<T> when they also produce a
// value). Statuses carry a code and a human-readable message. Statuses are
// cheap to copy for OK and carry a heap string only on error.

#ifndef WEBMON_UTIL_STATUS_H_
#define WEBMON_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace webmon {

/// Canonical error space, a subset of the Abseil canonical codes that the
/// library actually uses.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kResourceExhausted = 7,
  kAlreadyExists = 8,
  kIOError = 9,
  kUnavailable = 10,
  kDeadlineExceeded = 11,
};

/// Returns the canonical spelling of `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Immutable after construction.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and `message`. `code` must not be kOk;
  /// use the default constructor (or OK()) for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other) = default;
  Status& operator=(const Status& other) = default;
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  // Factories for each error code.
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status Unimplemented(std::string msg);
  static Status Internal(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status IOError(std::string msg);
  static Status Unavailable(std::string msg);
  static Status DeadlineExceeded(std::string msg);

  /// True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// The status code; kOk iff ok().
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK statuses.
  const std::string& message() const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Shared so Status copies are cheap; error states are immutable.
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status; `status.ok()` must be false.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr constructed from OK status without a value");
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK() when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The held value; must not be called when !ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

/// Propagates a non-OK status out of the calling function.
#define WEBMON_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::webmon::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Evaluates a StatusOr expression; on error returns the status, otherwise
/// assigns the value to `lhs`.
#define WEBMON_ASSIGN_OR_RETURN(lhs, expr)    \
  WEBMON_ASSIGN_OR_RETURN_IMPL_(              \
      WEBMON_STATUS_CONCAT_(_statusor_, __LINE__), lhs, expr)

#define WEBMON_STATUS_CONCAT_INNER_(a, b) a##b
#define WEBMON_STATUS_CONCAT_(a, b) WEBMON_STATUS_CONCAT_INNER_(a, b)
#define WEBMON_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

}  // namespace webmon

#endif  // WEBMON_UTIL_STATUS_H_
