#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace webmon {

StatusOr<Histogram> Histogram::Create(double lo, double hi,
                                      uint32_t num_buckets) {
  if (!(lo < hi)) {
    return Status::InvalidArgument("Histogram: lo must be < hi");
  }
  if (num_buckets == 0) {
    return Status::InvalidArgument("Histogram: need at least one bucket");
  }
  return Histogram(lo, hi, num_buckets);
}

Histogram::Histogram(double lo, double hi, uint32_t num_buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(num_buckets)),
      counts_(num_buckets, 0) {}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
  ++counts_[idx];
}

double Histogram::BucketLow(uint32_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const int64_t in_range = total_ - underflow_ - overflow_;
  if (in_range <= 0) return lo_;
  const double target = q * static_cast<double>(in_range);
  double cum = 0.0;
  for (uint32_t i = 0; i < num_buckets(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      if (counts_[i] == 0) return BucketLow(i);
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return BucketLow(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToString(uint32_t max_bar_width) const {
  int64_t max_count = 1;
  for (int64_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (uint32_t i = 0; i < num_buckets(); ++i) {
    const auto bar = static_cast<uint32_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(max_count) *
        max_bar_width);
    os << "[" << BucketLow(i) << ", " << BucketLow(i) + width_ << ") "
       << counts_[i] << " " << std::string(bar, '#') << "\n";
  }
  if (underflow_ > 0) os << "underflow " << underflow_ << "\n";
  if (overflow_ > 0) os << "overflow " << overflow_ << "\n";
  return os.str();
}

}  // namespace webmon
