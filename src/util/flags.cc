#include "util/flags.h"

#include <cassert>
#include <sstream>

#include "util/string_util.h"

namespace webmon {

FlagSet::FlagSet(std::string program_description)
    : program_description_(std::move(program_description)) {}

FlagSet& FlagSet::Add(const std::string& name, Type type,
                      std::string default_value, const std::string& help) {
  assert(!name.empty() && "flag name must not be empty");
  auto [it, inserted] = flags_.emplace(
      name, Flag{type, help, default_value, default_value, false});
  assert(inserted && "duplicate flag registration");
  (void)it;
  (void)inserted;
  return *this;
}

FlagSet& FlagSet::AddString(const std::string& name,
                            std::string default_value,
                            const std::string& help) {
  return Add(name, Type::kString, std::move(default_value), help);
}

FlagSet& FlagSet::AddInt(const std::string& name, int64_t default_value,
                         const std::string& help) {
  return Add(name, Type::kInt, std::to_string(default_value), help);
}

FlagSet& FlagSet::AddDouble(const std::string& name, double default_value,
                            const std::string& help) {
  std::ostringstream os;
  os << default_value;
  return Add(name, Type::kDouble, os.str(), help);
}

FlagSet& FlagSet::AddBool(const std::string& name, bool default_value,
                          const std::string& help) {
  return Add(name, Type::kBool, default_value ? "true" : "false", help);
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::NotFound("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kString:
      break;
    case Type::kInt: {
      int64_t v = 0;
      if (!ParseInt64(value, &v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kDouble: {
      double v = 0;
      if (!ParseDouble(value, &v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kBool: {
      if (value != "true" && value != "false" && value != "1" &&
          value != "0") {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      break;
    }
  }
  flag.value = (flag.type == Type::kBool)
                   ? ((value == "true" || value == "1") ? "true" : "false")
                   : value;
  flag.set = true;
  return Status::OK();
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      WEBMON_RETURN_IF_ERROR(SetValue(std::string(arg.substr(0, eq)),
                                      std::string(arg.substr(eq + 1))));
      continue;
    }
    std::string name(arg);
    // Boolean forms: --flag and --no-flag.
    auto it = flags_.find(name);
    if (it != flags_.end() && it->second.type == Type::kBool) {
      WEBMON_RETURN_IF_ERROR(SetValue(name, "true"));
      continue;
    }
    if (StartsWith(name, "no-")) {
      const std::string base = name.substr(3);
      auto base_it = flags_.find(base);
      if (base_it != flags_.end() && base_it->second.type == Type::kBool) {
        WEBMON_RETURN_IF_ERROR(SetValue(base, "false"));
        continue;
      }
    }
    // Space-separated value: --flag value.
    if (it == flags_.end()) {
      return Status::NotFound("unknown flag --" + name);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + name + " expects a value");
    }
    WEBMON_RETURN_IF_ERROR(SetValue(name, argv[++i]));
  }
  return Status::OK();
}

const FlagSet::Flag* FlagSet::Find(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.type != type) return nullptr;
  return &it->second;
}

std::string FlagSet::GetString(const std::string& name) const {
  const Flag* flag = Find(name, Type::kString);
  assert(flag && "GetString on unregistered or mistyped flag");
  return flag ? flag->value : "";
}

int64_t FlagSet::GetInt(const std::string& name) const {
  const Flag* flag = Find(name, Type::kInt);
  assert(flag && "GetInt on unregistered or mistyped flag");
  int64_t v = 0;
  if (flag) ParseInt64(flag->value, &v);
  return v;
}

double FlagSet::GetDouble(const std::string& name) const {
  const Flag* flag = Find(name, Type::kDouble);
  assert(flag && "GetDouble on unregistered or mistyped flag");
  double v = 0;
  if (flag) ParseDouble(flag->value, &v);
  return v;
}

bool FlagSet::GetBool(const std::string& name) const {
  const Flag* flag = Find(name, Type::kBool);
  assert(flag && "GetBool on unregistered or mistyped flag");
  return flag && flag->value == "true";
}

bool FlagSet::WasSet(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string FlagSet::Help() const {
  std::ostringstream os;
  if (!program_description_.empty()) os << program_description_ << "\n\n";
  os << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace webmon
