#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace webmon {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal_logging

}  // namespace webmon
