// Deterministic pseudo-random number generation for webmon.
//
// All stochastic components of the library (trace generation, workload
// generation, noise models, randomized policies) draw from Rng so that every
// experiment is exactly reproducible from a single 64-bit seed. The core
// generator is xoshiro256** seeded via SplitMix64, which is both fast and of
// high statistical quality; we avoid std::mt19937 because its state is large
// and its seeding from a single integer is notoriously weak.

#ifndef WEBMON_UTIL_RNG_H_
#define WEBMON_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace webmon {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Exposed for seeding and for tests.
uint64_t SplitMix64Next(uint64_t& state);

/// xoshiro256** generator with convenience sampling methods.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions if needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator whose entire state is derived from `seed` via
  /// SplitMix64, per the xoshiro authors' recommendation.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit output.
  uint64_t operator()() { return Next64(); }
  uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless unbiased method.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponential variate with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// Poisson variate with mean `mean` (>= 0). Uses Knuth's method for small
  /// means and a normal approximation with rejection touch-up for large ones.
  int64_t Poisson(double mean);

  /// Standard normal variate (Marsaglia polar method, cached pair).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful to give each resource or
  /// profile its own stream without correlation.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_RNG_H_
