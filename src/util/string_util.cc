#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace webmon {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(),
                        [&](char a, char b) { return lower(a) == lower(b); });
  return it != haystack.end();
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  // std::from_chars for double is not fully supported everywhere; strtod on a
  // NUL-terminated copy is portable and the inputs here are short.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace webmon
