// Deterministic monotonic/pool allocator for per-chronon scratch.
//
// The online scheduler's sustained-throughput path (docs/PERFORMANCE.md
// "Memory & sustained throughput") needs bounded, recyclable scratch: the
// per-chronon event buckets churn through small nodes every tick, and
// general-purpose heap allocation both costs time and defeats the
// 0-allocations-per-chronon steady-state contract. Arena carves aligned
// allocations out of geometrically sized blocks obtained from the global
// heap, never frees them individually, and rewinds the whole pool in O(1)
// with Reset() — blocks are retained and reused in order, so after warm-up
// a Reset/refill cycle touches the heap zero times.
//
// Not thread-safe: each Arena must be owned by a single thread (the
// scheduler uses one arena, mutated only in the serial Tick phase). All
// counters are plain integers on purpose — no atomics in the hot path.

#ifndef WEBMON_UTIL_ARENA_H_
#define WEBMON_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>

#include "util/check.h"

namespace webmon {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 16;  // 64 KiB

  /// `min_block_bytes` is the smallest block the arena requests from the
  /// heap; oversized allocations get a dedicated block of their own size.
  explicit Arena(size_t min_block_bytes = kDefaultBlockBytes)
      : min_block_payload_(min_block_bytes > sizeof(Block)
                               ? min_block_bytes - sizeof(Block)
                               : kDefaultBlockBytes - sizeof(Block)) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    Block* b = head_;
    while (b != nullptr) {
      Block* next = b->next;
      ::operator delete(static_cast<void*>(b));
      b = next;
    }
  }

  /// Returns `size` bytes aligned to `align` (a power of two). Zero-size
  /// requests return a valid aligned pointer without consuming space, so
  /// repeated zero-size allocations may alias — arena pointers are scratch,
  /// not identities. Never returns nullptr (the underlying operator new
  /// throws on exhaustion).
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    WEBMON_DCHECK(align != 0 && (align & (align - 1)) == 0)
        << "alignment must be a power of two, got " << align;
    uintptr_t p = (cursor_ + align - 1) & ~(uintptr_t{align} - 1);
    if (p + size > limit_ || limit_ == 0) {
      p = AdvanceBlock(size, align);
    }
    cursor_ = p + size;
    ++allocation_count_;
    cumulative_bytes_ += size;
    live_bytes_ += size;
    if (live_bytes_ > high_water_bytes_) high_water_bytes_ = live_bytes_;
    return reinterpret_cast<void*>(p);
  }

  /// Typed convenience: uninitialized storage for `n` objects of T.
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds the pool in O(1). All previously returned pointers become
  /// logically dead (the memory stays mapped and is handed out again by
  /// subsequent allocations, first-block-first — an identical allocation
  /// sequence after Reset() yields identical pointers). Blocks are kept.
  void Reset() {
    current_ = head_;
    if (head_ != nullptr) {
      cursor_ = PayloadStart(head_);
      limit_ = cursor_ + head_->capacity;
    }
    live_bytes_ = 0;
  }

  /// Cumulative user bytes handed out since construction (monotone).
  size_t cumulative_bytes() const { return cumulative_bytes_; }
  /// Cumulative number of Allocate() calls since construction (monotone).
  int64_t allocation_count() const { return allocation_count_; }
  /// User bytes handed out since the last Reset().
  size_t live_bytes() const { return live_bytes_; }
  /// Maximum live_bytes() ever observed — sizes the steady-state footprint.
  size_t high_water_bytes() const { return high_water_bytes_; }
  /// Number of heap blocks owned (never shrinks until destruction).
  size_t blocks_allocated() const { return num_blocks_; }
  /// Total heap bytes owned, including block headers.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    Block* next;
    size_t capacity;  // payload bytes following the header
  };

  static uintptr_t PayloadStart(Block* b) {
    return reinterpret_cast<uintptr_t>(b) + sizeof(Block);
  }

  /// Slow path: move to the next retained block that fits, or grow.
  /// Returns the aligned allocation start; callers bump the cursor.
  uintptr_t AdvanceBlock(size_t size, size_t align) {
    // Worst-case slack so "fits" is checkable from capacity alone.
    const size_t needed = size + align - 1;
    Block* candidate = (current_ != nullptr) ? current_->next : head_;
    // Retained blocks are reused in chain order; a retained block too small
    // for this request is skipped for the rest of this Reset() cycle (the
    // scheduler's uniform chunk sizes never hit this).
    while (candidate != nullptr && candidate->capacity < needed) {
      candidate = candidate->next;
    }
    if (candidate == nullptr) {
      const size_t capacity =
          needed > min_block_payload_ ? needed : min_block_payload_;
      candidate = static_cast<Block*>(::operator new(sizeof(Block) + capacity));
      candidate->capacity = capacity;
      // Link after current_ so the in-order reuse walk finds it next cycle.
      if (current_ != nullptr) {
        candidate->next = current_->next;
        current_->next = candidate;
      } else {
        candidate->next = head_;
        head_ = candidate;
      }
      ++num_blocks_;
      bytes_reserved_ += sizeof(Block) + capacity;
    }
    current_ = candidate;
    cursor_ = PayloadStart(candidate);
    limit_ = cursor_ + candidate->capacity;
    return (cursor_ + align - 1) & ~(uintptr_t{align} - 1);
  }

  Block* head_ = nullptr;     // reuse starts here on Reset()
  Block* current_ = nullptr;  // block the cursor lives in
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t min_block_payload_;

  size_t cumulative_bytes_ = 0;
  int64_t allocation_count_ = 0;
  size_t live_bytes_ = 0;
  size_t high_water_bytes_ = 0;
  size_t num_blocks_ = 0;
  size_t bytes_reserved_ = 0;
};

/// STL-compatible allocator view over an Arena. deallocate() is a no-op —
/// memory comes back only via Arena::Reset() — so containers using it must
/// not outlive a Reset() of the backing arena. Equality compares the
/// backing arena, and the allocator propagates on move/swap so containers
/// carry their arena with them.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {
    WEBMON_DCHECK(arena != nullptr) << "ArenaAllocator needs a backing arena";
  }

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}  // reclaimed wholesale by Arena::Reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_ARENA_H_
