// FlatIdMap: an open-addressing hash map from dense-ish 64-bit ids to small
// values, built for the scheduler's steady-state-allocation contract.
//
// The online scheduler needs a CeiId -> state-index lookup to serve
// cancellations, but a std::unordered_map would (a) allocate a node per
// insert — breaking the zero-allocation steady-state tick the alloc tests
// enforce — and (b) expose iteration in hash order, which the determinism
// analyzer bans from scheduling code. FlatIdMap fixes both:
//
//   * Linear probing over one flat power-of-two table (three parallel
//     arrays: key, value, occupancy). Insert allocates only when the load
//     factor crosses ~0.7 and the table doubles — a high-water event, never
//     steady state. Erase uses backward-shift deletion instead of
//     tombstones, so a stable population of insert/erase churn never
//     degrades probe lengths and never needs a rehash.
//   * No iterators. Lookup order cannot leak into a schedule; the only
//     traversal is ForEach, whose visit order is explicitly unspecified
//     (the analyzer treats it exactly like unordered-container iteration).
//
// Keys are hashed through SplitMix64, so adversarially dense or strided id
// patterns still spread. Not thread-safe — single-owner, like the Arena.

#ifndef WEBMON_UTIL_ID_MAP_H_
#define WEBMON_UTIL_ID_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace webmon {

template <typename V>
class FlatIdMap {
 public:
  FlatIdMap() = default;

  /// Pre-sizes the table for `n` live keys so inserts up to that population
  /// never allocate (capacity hints / steady-state warm-up).
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kLoadDen) cap <<= 1;
    if (cap > capacity()) Rehash(cap);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Table growths so far (diagnostics: a flat curve after warm-up is the
  /// steady-state no-allocation signal, mirroring EventRing).
  int64_t rehashes() const { return rehashes_; }

  /// Inserts `key` -> `value`, overwriting any existing mapping.
  void Insert(uint64_t key, V value) {
    if ((size_ + 1) * kLoadDen > capacity() * kMaxLoadNum) {
      Rehash(capacity() == 0 ? kMinCapacity : capacity() * 2);
    }
    size_t i = Slot(key);
    while (used_[i]) {
      if (keys_[i] == key) {
        values_[i] = std::move(value);
        return;
      }
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
  }

  /// Pointer to the value mapped to `key`, or nullptr. Valid until the next
  /// Insert/Erase.
  V* Find(uint64_t key) {
    const size_t i = FindSlot(key);
    return i == kNotFound ? nullptr : &values_[i];
  }
  const V* Find(uint64_t key) const {
    const size_t i = FindSlot(key);
    return i == kNotFound ? nullptr : &values_[i];
  }

  /// Removes `key` if present. Backward-shift deletion: the probe chain
  /// after the hole is compacted in place, so the table never accumulates
  /// tombstones and never needs a cleanup rehash — steady-state churn
  /// (insert/erase at a stable population) touches the heap zero times.
  bool Erase(uint64_t key) {
    size_t i = FindSlot(key);
    if (i == kNotFound) return false;
    used_[i] = 0;
    --size_;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (!used_[j]) break;
      const size_t home = Slot(keys_[j]);
      // The entry at j may back-fill the hole at i iff its probe path from
      // `home` runs through i — i.e. home is NOT cyclically in (i, j].
      const bool blocked =
          i < j ? (home > i && home <= j) : (home > i || home <= j);
      if (!blocked) {
        keys_[i] = keys_[j];
        values_[i] = std::move(values_[j]);
        used_[i] = 1;
        used_[j] = 0;
        i = j;
      }
    }
    return true;
  }

  /// Visits every (key, value) pair in UNSPECIFIED order — never let the
  /// visit order feed a schedule; sort the keys first (see the determinism
  /// analyzer's unordered-iter rule, which covers FlatIdMap).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) fn(keys_[i], values_[i]);
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kNotFound = ~size_t{0};
  // Max load factor 11/16 (~0.69): linear probing stays short.
  static constexpr size_t kMaxLoadNum = 11;
  static constexpr size_t kLoadDen = 16;

  size_t capacity() const { return used_.size(); }

  static uint64_t Mix(uint64_t x) {
    // SplitMix64 finalizer: dense sequential ids spread over the table.
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  size_t Slot(uint64_t key) const {
    WEBMON_DCHECK(!used_.empty());
    return static_cast<size_t>(Mix(key)) & mask_;
  }

  size_t FindSlot(uint64_t key) const {
    if (used_.empty()) return kNotFound;
    size_t i = Slot(key);
    while (used_[i]) {
      if (keys_[i] == key) return i;
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    std::vector<uint8_t> old_used = std::move(used_);
    keys_.assign(new_capacity, 0);
    values_.assign(new_capacity, V{});
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    ++rehashes_;
    for (size_t i = 0; i < old_used.size(); ++i) {
      if (old_used[i]) Insert(old_keys[i], std::move(old_values[i]));
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
  int64_t rehashes_ = 0;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_ID_MAP_H_
