// SeqMailbox: a mutex-guarded multi-producer mailbox with deterministic
// drain order.
//
// Producers Push() items from any thread; every accepted item is stamped
// with a monotonically increasing sequence number and the mailbox's current
// epoch (for the proxy, the chronon the item will take effect at). The
// single consumer calls DrainAndAdvance(next_epoch), which atomically
// advances the epoch and removes every pending item in sequence order.
// Because stamping and appending happen under one lock, the drained batch is
// a total order of arrivals: any computation that consumes batches purely as
// a function of their (seq, epoch, item) content is deterministic given the
// arrival log, no matter how producer threads interleaved
// (docs/CONCURRENCY.md).
//
// The lock is held only for the duration of the producer's `make` closure
// (validation + stamping) or the drain's vector swap, so producers never
// block on the consumer's processing of a drained batch.

#ifndef WEBMON_UTIL_MAILBOX_H_
#define WEBMON_UTIL_MAILBOX_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace webmon {

/// A thread-safe multi-producer / single-consumer mailbox whose entries are
/// stamped with (sequence number, epoch) under one lock, making the drain
/// order a deterministic function of the arrival log.
template <typename T>
class SeqMailbox {
 public:
  /// One accepted item with its stamps.
  struct Entry {
    /// Position in the mailbox's total arrival order (0, 1, 2, ...).
    uint64_t seq = 0;
    /// The epoch the item was accepted in — the consumer's
    /// DrainAndAdvance(e + 1) call is the one that delivers it.
    int64_t epoch = 0;
    T item;
  };

  explicit SeqMailbox(int64_t initial_epoch = 0) : epoch_(initial_epoch) {}

  SeqMailbox(const SeqMailbox&) = delete;
  SeqMailbox& operator=(const SeqMailbox&) = delete;

  /// Producer side, callable from any thread. Runs `make(seq, epoch)` under
  /// the mailbox lock, where `seq` is the sequence number the item would be
  /// stamped with and `epoch` the epoch it would take effect in. If `make`
  /// returns an engaged optional the item is appended with those stamps and
  /// Push returns true; a disengaged optional rejects the item, consumes no
  /// sequence number, and returns false. `make` must be cheap (it runs under
  /// the producers' shared lock) and must not touch the mailbox.
  template <typename F>
  bool Push(F&& make) {
    std::lock_guard<std::mutex> lock(mu_);
    std::optional<T> item = make(next_seq_, epoch_);
    if (!item.has_value()) return false;
    pending_.push_back(Entry{next_seq_, epoch_, *std::move(item)});
    ++next_seq_;
    return true;
  }

  /// Consumer side (single consumer). Atomically advances the epoch to
  /// `next_epoch` and removes every pending entry, in sequence order.
  /// Producers that acquire the lock after this call stamp `next_epoch`;
  /// every returned entry was stamped with an earlier epoch.
  std::vector<Entry> DrainAndAdvance(int64_t next_epoch) {
    std::vector<Entry> batch;
    std::lock_guard<std::mutex> lock(mu_);
    epoch_ = next_epoch;
    batch.swap(pending_);
    return batch;
  }

  /// The epoch new items are currently stamped with.
  int64_t epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

  /// Number of accepted items awaiting the next drain.
  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

 private:
  mutable std::mutex mu_;
  uint64_t next_seq_ = 0;
  int64_t epoch_ = 0;
  std::vector<Entry> pending_;
};

}  // namespace webmon

#endif  // WEBMON_UTIL_MAILBOX_H_
