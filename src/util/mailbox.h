// SeqMailbox: a mutex-guarded multi-producer mailbox with deterministic
// drain order.
//
// Producers Push() items from any thread; every accepted item is stamped
// with a monotonically increasing sequence number and the mailbox's current
// epoch (for the proxy, the chronon the item will take effect at). The
// single consumer calls DrainAndAdvance(next_epoch), which atomically
// advances the epoch and removes every pending item in sequence order.
// Because stamping and appending happen under one lock, the drained batch is
// a total order of arrivals: any computation that consumes batches purely as
// a function of their (seq, epoch, item) content is deterministic given the
// arrival log, no matter how producer threads interleaved
// (docs/CONCURRENCY.md).
//
// The lock is held only for the duration of the producer's `make` closure
// (validation + stamping) or the drain's vector swap, so producers never
// block on the consumer's processing of a drained batch.

#ifndef WEBMON_UTIL_MAILBOX_H_
#define WEBMON_UTIL_MAILBOX_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace webmon {

/// A thread-safe multi-producer / single-consumer mailbox whose entries are
/// stamped with (sequence number, epoch) under one lock, making the drain
/// order a deterministic function of the arrival log.
template <typename T>
class SeqMailbox {
 public:
  /// One accepted item with its stamps.
  struct Entry {
    /// Position in the mailbox's total arrival order (0, 1, 2, ...).
    uint64_t seq = 0;
    /// The epoch the item was accepted in — the consumer's
    /// DrainAndAdvance(e + 1) call is the one that delivers it.
    int64_t epoch = 0;
    T item;
  };

  explicit SeqMailbox(int64_t initial_epoch = 0) : epoch_(initial_epoch) {}

  SeqMailbox(const SeqMailbox&) = delete;
  SeqMailbox& operator=(const SeqMailbox&) = delete;

  /// Producer side, callable from any thread. Runs `make(seq, epoch)` under
  /// the mailbox lock, where `seq` is the sequence number the item would be
  /// stamped with and `epoch` the epoch it would take effect in. If `make`
  /// returns an engaged optional the item is appended with those stamps and
  /// Push returns true; a disengaged optional rejects the item, consumes no
  /// sequence number, and returns false. `make` must be cheap (it runs under
  /// the producers' shared lock) and must not touch the mailbox.
  /// The closure runs while `mu()` is held; a closure that touches state of
  /// its own declared GUARDED_BY(mailbox.mu()) should open with
  /// `mailbox.mu().AssertHeld()` so the analysis sees that fact (the lock
  /// acquisition below is invisible across the std::function-free template
  /// boundary).
  template <typename F>
  bool Push(F&& make) {
    MutexLock lock(mu_);
    std::optional<T> item = make(next_seq_, epoch_);
    if (!item.has_value()) return false;
    pending_.push_back(Entry{next_seq_, epoch_, *std::move(item)});
    ++next_seq_;
    return true;
  }

  /// Consumer side (single consumer). Atomically advances the epoch to
  /// `next_epoch` and removes every pending entry, in sequence order.
  /// Producers that acquire the lock after this call stamp `next_epoch`;
  /// every returned entry was stamped with an earlier epoch.
  std::vector<Entry> DrainAndAdvance(int64_t next_epoch) {
    std::vector<Entry> batch;
    MutexLock lock(mu_);
    epoch_ = next_epoch;
    batch.swap(pending_);
    return batch;
  }

  /// The epoch new items are currently stamped with.
  int64_t epoch() const {
    MutexLock lock(mu_);
    return epoch_;
  }

  /// Number of accepted items awaiting the next drain.
  size_t pending() const {
    MutexLock lock(mu_);
    return pending_.size();
  }

  /// The mailbox's lock, exposed as a capability so owners can co-locate
  /// their own ingestion state under it: declare members
  /// GUARDED_BY(mailbox_.mu()) and take `MutexLock lock(mailbox_.mu())` to
  /// read them outside a Push closure (the proxy's ingestion counters do
  /// exactly this). Use it for annotation and short reads — never to call
  /// back into the mailbox, whose methods acquire it themselves.
  Mutex& mu() const RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  mutable Mutex mu_;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  int64_t epoch_ GUARDED_BY(mu_) = 0;
  std::vector<Entry> pending_ GUARDED_BY(mu_);
};

}  // namespace webmon

#endif  // WEBMON_UTIL_MAILBOX_H_
