#include "util/table_writer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace webmon {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableWriter::Fmt(int64_t v) { return std::to_string(v); }

std::string TableWriter::Percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string TableWriter::ToText() const {
  size_t ncols = headers_.size();
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());
  std::vector<size_t> widths(ncols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(headers_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& cell = (i < row.size()) ? row[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i])) << cell;
      if (i + 1 < ncols) os << "  ";
    }
    os << "\n";
  };
  emit(headers_);
  size_t rule_len = 0;
  for (size_t w : widths) rule_len += w;
  rule_len += 2 * (ncols > 0 ? ncols - 1 : 0);
  os << std::string(rule_len, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TableWriter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << CsvEscape(row[i]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TableWriter::Print(std::ostream& os) const { os << ToText(); }

}  // namespace webmon
