// Proposition 5 transformation: arbitrary instance -> P^[1] instance.
//
// Every CEI eta = {I_1, ..., I_k} with |I_q| = n_q chronons is replaced by
// the prod_q n_q "combination" CEIs: one per choice of a single chronon from
// each EI, with every new EI of width exactly one chronon on the original
// EI's resource. A schedule that captures a combination CEI probes each
// original EI inside its window, hence captures the original CEI; and any
// capture of the original CEI corresponds to at least one captured
// combination. (The paper's construction adds a (k+1)-th bookkeeping
// interval to make the approximation-ratio accounting work — rank k maps to
// rank k+1 — which is why an alpha(k)-approximation on P^[1] yields an
// alpha(k+1)-approximation on P.)
//
// The transformation's output is exponential in rank (prod n_q per CEI),
// which is precisely why the offline approach "does not scale well for real
// world problem instances" (Section IV-B.2); a size guard enforces that.

#ifndef WEBMON_OFFLINE_P1_TRANSFORM_H_
#define WEBMON_OFFLINE_P1_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "model/problem.h"
#include "util/status.h"

namespace webmon {

/// A transformed instance plus the mapping back to the original CEIs.
struct P1TransformResult {
  ProblemInstance problem;
  /// origin[i] = id of the original CEI that transformed CEI #i (in
  /// (profile, cei) iteration order) derives from.
  std::vector<CeiId> origin;
};

/// Transforms `problem` into an equivalent P^[1] instance. Fails with
/// ResourceExhausted when the output would exceed `max_output_ceis`.
StatusOr<P1TransformResult> TransformToP1(const ProblemInstance& problem,
                                          int64_t max_output_ceis = 100000);

/// Given a schedule for the transformed instance (same resources/epoch),
/// counts how many ORIGINAL CEIs it captures. Used to map approximation
/// results back (any transformed-instance schedule is feasible for the
/// original instance as budgets are identical).
int64_t OriginalCeisCaptured(const ProblemInstance& original,
                             const Schedule& schedule);

}  // namespace webmon

#endif  // WEBMON_OFFLINE_P1_TRANSFORM_H_
