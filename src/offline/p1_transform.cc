#include "offline/p1_transform.h"

#include "model/completeness.h"
#include "util/check.h"

namespace webmon {

StatusOr<P1TransformResult> TransformToP1(const ProblemInstance& problem,
                                          int64_t max_output_ceis) {
  // Pre-compute output size and enforce the guard.
  int64_t total_out = 0;
  for (const auto& profile : problem.profiles()) {
    for (const auto& cei : profile.ceis) {
      int64_t combos = 1;
      for (const auto& ei : cei.eis) {
        combos *= ei.Length();
        if (combos > max_output_ceis) {
          return Status::ResourceExhausted(
              "P^[1] transformation would exceed the output cap (CEI " +
              std::to_string(cei.id) + " alone has too many combinations)");
        }
      }
      total_out += combos;
      if (total_out > max_output_ceis) {
        return Status::ResourceExhausted(
            "P^[1] transformation output exceeds cap of " +
            std::to_string(max_output_ceis) + " CEIs");
      }
    }
  }

  ProblemBuilder builder(problem.num_resources(), problem.num_chronons(),
                         problem.budget());
  std::vector<CeiId> origin;
  origin.reserve(static_cast<size_t>(total_out));

  for (const auto& profile : problem.profiles()) {
    builder.BeginProfile();
    for (const auto& cei : profile.ceis) {
      // Enumerate the cartesian product of chronon choices, odometer-style.
      const size_t k = cei.eis.size();
      std::vector<Chronon> choice(k);
      for (size_t q = 0; q < k; ++q) choice[q] = cei.eis[q].start;
      while (true) {
        std::vector<std::tuple<ResourceId, Chronon, Chronon>> eis;
        eis.reserve(k);
        for (size_t q = 0; q < k; ++q) {
          eis.emplace_back(cei.eis[q].resource, choice[q], choice[q]);
        }
        WEBMON_ASSIGN_OR_RETURN(CeiId id, builder.AddCei(eis));
        (void)id;
        origin.push_back(cei.id);
        // Advance the odometer.
        size_t q = 0;
        for (; q < k; ++q) {
          if (choice[q] < cei.eis[q].finish) {
            ++choice[q];
            for (size_t p = 0; p < q; ++p) choice[p] = cei.eis[p].start;
            break;
          }
        }
        if (q == k) break;
      }
    }
  }

  WEBMON_ASSIGN_OR_RETURN(ProblemInstance transformed, builder.Build());
  // Proposition 5 contract: the output is a P^[1] instance (every EI has
  // width exactly one chronon) with one origin entry per transformed CEI.
  WEBMON_CHECK(transformed.IsUnitWidth())
      << "P^[1] transformation emitted a wide EI";
  WEBMON_CHECK_EQ(static_cast<int64_t>(origin.size()),
                  transformed.TotalCeis());
  return P1TransformResult{std::move(transformed), std::move(origin)};
}

int64_t OriginalCeisCaptured(const ProblemInstance& original,
                             const Schedule& schedule) {
  return CapturedCeiCount(original, schedule);
}

}  // namespace webmon
