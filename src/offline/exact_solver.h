// Exact offline solver for Problem 1 by branch-and-bound schedule search.
//
// Proposition 4 shows full enumeration costs O(K n^{K C_max + 1}). This
// solver explores that space depth-first with:
//  * an admissible upper bound — weight already locked in plus the total
//    weight of still-`Alive` CEIs — pruned against a running incumbent;
//  * per-chronon memo/visited tables keyed on the captured-EI set
//    (util/bitset256, lifting the old 64-EI mask ceiling);
//  * candidate dominance — a resource whose capture gain is a subset of
//    another's at equal cost is never enumerated;
//  * an optional parallel phase splitting the root chronon's combinations
//    across util/thread_pool with a shared atomic incumbent.
// The returned schedule is byte-identical to the pre-optimization reference
// (offline/reference_solvers.h) at any thread count: the search phase only
// establishes the optimal value (an order-independent max), and a serial
// reconstruction phase re-derives the canonical schedule. See
// docs/PERFORMANCE.md ("Offline solvers") for the bound derivation and the
// determinism argument. It exists as the ground-truth oracle for tests: the
// optimality of S-EDF under Proposition 1's conditions, the feasibility and
// quality of the offline approximation, and the online policies'
// completeness are all checked against it.

#ifndef WEBMON_OFFLINE_EXACT_SOLVER_H_
#define WEBMON_OFFLINE_EXACT_SOLVER_H_

#include <cstdint>

#include "model/problem.h"
#include "model/schedule.h"
#include "util/status.h"

namespace webmon {

/// Result of an exact solve.
struct ExactResult {
  Schedule schedule;
  /// Number of CEIs the optimal schedule captures. (The solver maximizes
  /// total captured WEIGHT; with unit weights that coincides with the
  /// count, otherwise the count is whatever the weight-optimal schedule
  /// happens to capture.)
  int64_t captured_ceis = 0;
  /// Optimal total captured weight.
  double captured_weight = 0.0;
  /// Gained completeness (Eq. 1) of the returned schedule.
  double completeness = 0.0;
  /// Weighted completeness of the returned schedule (optimal).
  double weighted_completeness = 0.0;
  /// Number of DFS states expanded across both phases (diagnostics).
  int64_t states_expanded = 0;
  /// Subtrees cut by the upper-bound-vs-incumbent prune (diagnostics; with
  /// num_threads > 1 the split across counters varies with scheduling, the
  /// schedule and values never do).
  int64_t subtrees_pruned = 0;
  /// Candidate resources dropped by dominance (gain-subset) filtering.
  int64_t dominated_skipped = 0;
  /// Memo/visited table hits (diagnostics).
  int64_t memo_hits = 0;
  /// Wall time of the value-search phase, seconds.
  double search_seconds = 0.0;
  /// Wall time of the schedule-reconstruction phase, seconds.
  double reconstruct_seconds = 0.0;
};

/// Options bounding the search.
struct ExactSolverOptions {
  /// Refuse instances with more EIs than this (the state space is 2^EIs;
  /// hard-capped at 256 by the capture mask width).
  int64_t max_eis = 100;
  /// Abort after this many expanded states (0 = unlimited).
  int64_t max_states = 50'000'000;
  /// Workers for the root-split search phase (<= 1 = serial). The schedule
  /// and all values are byte-identical at any setting.
  int num_threads = 1;
};

/// Computes an optimal schedule. Fails with InvalidArgument when the
/// instance exceeds `options.max_eis`, ResourceExhausted when the state
/// budget is hit.
StatusOr<ExactResult> SolveExact(const ProblemInstance& problem,
                                 const ExactSolverOptions& options = {});

}  // namespace webmon

#endif  // WEBMON_OFFLINE_EXACT_SOLVER_H_
