// Exact offline solver for Problem 1 by schedule search.
//
// Proposition 4 shows full enumeration costs O(K n^{K C_max + 1}); this
// solver explores the same space with memoization on (chronon, captured-EI
// set) and an optimistic-bound prune, which makes tiny instances (up to
// ~24 EIs) tractable. It exists as the ground-truth oracle for tests: the
// optimality of S-EDF under Proposition 1's conditions, the feasibility and
// quality of the offline approximation, and the online policies' completeness
// are all checked against it.

#ifndef WEBMON_OFFLINE_EXACT_SOLVER_H_
#define WEBMON_OFFLINE_EXACT_SOLVER_H_

#include <cstdint>

#include "model/problem.h"
#include "model/schedule.h"
#include "util/status.h"

namespace webmon {

/// Result of an exact solve.
struct ExactResult {
  Schedule schedule;
  /// Number of CEIs the optimal schedule captures. (The solver maximizes
  /// total captured WEIGHT; with unit weights that coincides with the
  /// count, otherwise the count is whatever the weight-optimal schedule
  /// happens to capture.)
  int64_t captured_ceis = 0;
  /// Optimal total captured weight.
  double captured_weight = 0.0;
  /// Gained completeness (Eq. 1) of the returned schedule.
  double completeness = 0.0;
  /// Weighted completeness of the returned schedule (optimal).
  double weighted_completeness = 0.0;
  /// Number of DFS states expanded (diagnostics).
  int64_t states_expanded = 0;
};

/// Options bounding the search.
struct ExactSolverOptions {
  /// Refuse instances with more EIs than this (the state space is 2^EIs).
  int64_t max_eis = 24;
  /// Abort after this many expanded states (0 = unlimited).
  int64_t max_states = 50'000'000;
};

/// Computes an optimal schedule. Fails with InvalidArgument when the
/// instance exceeds `options.max_eis`, ResourceExhausted when the state
/// budget is hit.
StatusOr<ExactResult> SolveExact(const ProblemInstance& problem,
                                 const ExactSolverOptions& options = {});

}  // namespace webmon

#endif  // WEBMON_OFFLINE_EXACT_SOLVER_H_
