#include "offline/exact_solver.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "model/completeness.h"
#include "util/check.h"

namespace webmon {

namespace {

// Flattened instance view used by the search.
struct FlatEi {
  ResourceId resource;
  Chronon start;
  Chronon finish;
  uint32_t cei;  // index into FlatCei vector
};

struct FlatCei {
  uint64_t mask = 0;      // bit per flattened EI index
  uint32_t size = 0;      // number of EIs
  uint32_t required = 0;  // captures needed to satisfy the CEI
  double weight = 1.0;    // client utility of capturing the CEI
};

class Search {
 public:
  Search(const ProblemInstance& problem, const ExactSolverOptions& options)
      : problem_(problem),
        options_(options),
        k_(problem.num_chronons()),
        memo_(static_cast<size_t>(std::max<Chronon>(k_, 0))) {
    for (const auto& profile : problem.profiles()) {
      for (const auto& cei : profile.ceis) {
        const uint32_t ci = static_cast<uint32_t>(ceis_.size());
        ceis_.push_back({});
        ceis_[ci].size = static_cast<uint32_t>(cei.eis.size());
        ceis_[ci].required = static_cast<uint32_t>(cei.RequiredCaptures());
        ceis_[ci].weight = cei.weight;
        for (const auto& ei : cei.eis) {
          const uint32_t e = static_cast<uint32_t>(eis_.size());
          eis_.push_back({ei.resource, ei.start, ei.finish, ci});
          ceis_[ci].mask |= (uint64_t{1} << e);
        }
      }
    }
  }

  StatusOr<ExactResult> Run() {
    if (static_cast<int64_t>(eis_.size()) > options_.max_eis) {
      return Status::InvalidArgument(
          "instance too large for exact search: " +
          std::to_string(eis_.size()) + " EIs > max " +
          std::to_string(options_.max_eis));
    }
    states_ = 0;
    WEBMON_ASSIGN_OR_RETURN(const double best, Dfs(0, 0));

    ExactResult result{Schedule(problem_.num_resources(), k_), 0, best, 0.0,
                       0.0, states_};
    WEBMON_RETURN_IF_ERROR(Reconstruct(&result.schedule));
    result.captured_ceis = CapturedCeiCount(problem_, result.schedule);
    result.completeness = GainedCompleteness(problem_, result.schedule);
    result.weighted_completeness =
        WeightedCompleteness(problem_, result.schedule);
    return result;
  }

 private:
  // True iff CEI ci is already satisfied under its capture semantics.
  bool Completed(uint32_t ci, uint64_t captured) const {
    return static_cast<uint32_t>(
               __builtin_popcountll(captured & ceis_[ci].mask)) >=
           ceis_[ci].required;
  }

  // True iff CEI ci can still be completed: the EIs whose windows have not
  // fully passed by chronon t, plus those already captured, suffice.
  bool Alive(uint32_t ci, Chronon t, uint64_t captured) const {
    uint32_t failed = 0;
    uint64_t mask = ceis_[ci].mask;
    while (mask != 0) {
      const int e = __builtin_ctzll(mask);
      mask &= mask - 1;
      if ((captured >> e) & 1) continue;
      if (eis_[static_cast<size_t>(e)].finish < t) ++failed;
    }
    return ceis_[ci].size - failed >= ceis_[ci].required;
  }

  // Total weight of CEIs satisfied by `captured`.
  double CompletedWeight(uint64_t captured) const {
    double done = 0.0;
    for (uint32_t ci = 0; ci < ceis_.size(); ++ci) {
      if (Completed(ci, captured)) done += ceis_[ci].weight;
    }
    return done;
  }

  // Candidate resources at chronon t: those with an active uncaptured EI
  // whose parent CEI is still alive. Returns (resource, captures-mask).
  std::vector<std::pair<ResourceId, uint64_t>> Candidates(
      Chronon t, uint64_t captured) const {
    // capture mask per resource if probed at t.
    std::unordered_map<ResourceId, uint64_t> gain;
    for (uint32_t e = 0; e < eis_.size(); ++e) {
      if ((captured >> e) & 1) continue;
      const FlatEi& ei = eis_[e];
      if (ei.start > t || ei.finish < t) continue;
      if (Completed(ei.cei, captured)) continue;  // nothing to gain
      if (!Alive(ei.cei, t, captured)) continue;
      gain[ei.resource] |= (uint64_t{1} << e);
    }
    std::vector<std::pair<ResourceId, uint64_t>> out(gain.begin(), gain.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  // Best final captured weight reachable from (t, captured).
  StatusOr<double> Dfs(Chronon t, uint64_t captured) {
    if (t >= k_) return CompletedWeight(captured);
    // One memo table per chronon, keyed on the raw captured mask. The
    // previous single-table key `captured * (k_ + 1) + t` silently wraps
    // around 2^64 once high EI bits are set, aliasing distinct (t, captured)
    // states and corrupting memo hits (see the MemoKeyCollision regression
    // test for a concrete pair).
    auto& memo = memo_[static_cast<size_t>(t)];
    if (auto it = memo.find(captured); it != memo.end()) return it->second;
    if (options_.max_states > 0 && ++states_ > options_.max_states) {
      return Status::ResourceExhausted("exact search state budget exceeded");
    }

    const auto candidates = Candidates(t, captured);
    const int64_t budget = problem_.budget().At(t);
    const size_t pick =
        std::min<size_t>(candidates.size(), static_cast<size_t>(
                                                std::max<int64_t>(budget, 0)));
    double best = 0;
    if (pick == 0) {
      WEBMON_ASSIGN_OR_RETURN(best, Dfs(t + 1, captured));
    } else {
      // Probing more resources never hurts, so enumerate subsets of size
      // exactly `pick`.
      std::vector<size_t> idx(pick);
      Status failure = Status::OK();
      // Iterative combination enumeration.
      for (size_t i = 0; i < pick; ++i) idx[i] = i;
      while (true) {
        uint64_t next_captured = captured;
        for (size_t i = 0; i < pick; ++i) {
          next_captured |= candidates[idx[i]].second;
        }
        auto sub = Dfs(t + 1, next_captured);
        if (!sub.ok()) return sub.status();
        best = std::max(best, *sub);
        // Advance combination.
        size_t i = pick;
        while (i > 0) {
          --i;
          if (idx[i] != i + candidates.size() - pick) break;
          if (i == 0) {
            i = pick;  // signal done
            break;
          }
        }
        if (i == pick) break;
        ++idx[i];
        for (size_t j = i + 1; j < pick; ++j) idx[j] = idx[j - 1] + 1;
      }
      (void)failure;
    }
    // Bound monotonicity: captures are never undone, so the best final
    // weight reachable from here is at least the weight already locked in.
    WEBMON_DCHECK_GE(best, CompletedWeight(captured) - 1e-12)
        << "DFS bound dropped below the already-captured weight at chronon "
        << t;
    memo[captured] = best;
    return best;
  }

  // Replays an optimal path, writing probes into `schedule`.
  Status Reconstruct(Schedule* schedule) {
    constexpr double kEps = 1e-9;
    Chronon t = 0;
    uint64_t captured = 0;
    while (t < k_) {
      WEBMON_ASSIGN_OR_RETURN(const double target, Dfs(t, captured));
      const auto candidates = Candidates(t, captured);
      const int64_t budget = problem_.budget().At(t);
      const size_t pick = std::min<size_t>(
          candidates.size(),
          static_cast<size_t>(std::max<int64_t>(budget, 0)));
      bool advanced = false;
      if (pick == 0) {
        t += 1;
        advanced = true;
      } else {
        std::vector<size_t> idx(pick);
        for (size_t i = 0; i < pick; ++i) idx[i] = i;
        while (!advanced) {
          uint64_t next_captured = captured;
          for (size_t i = 0; i < pick; ++i) {
            next_captured |= candidates[idx[i]].second;
          }
          WEBMON_ASSIGN_OR_RETURN(const double sub, Dfs(t + 1, next_captured));
          if (sub >= target - kEps) {
            for (size_t i = 0; i < pick; ++i) {
              WEBMON_RETURN_IF_ERROR(
                  schedule->AddProbe(candidates[idx[i]].first, t));
            }
            captured = next_captured;
            t += 1;
            advanced = true;
            break;
          }
          size_t i = pick;
          while (i > 0) {
            --i;
            if (idx[i] != i + candidates.size() - pick) break;
            if (i == 0) {
              i = pick;
              break;
            }
          }
          if (i == pick) {
            return Status::Internal("exact reconstruction diverged from memo");
          }
          ++idx[i];
          for (size_t j = i + 1; j < pick; ++j) idx[j] = idx[j - 1] + 1;
        }
      }
    }
    return Status::OK();
  }

  const ProblemInstance& problem_;
  ExactSolverOptions options_;
  Chronon k_;
  std::vector<FlatEi> eis_;
  std::vector<FlatCei> ceis_;
  std::vector<std::unordered_map<uint64_t, double>> memo_;  // one per chronon
  int64_t states_ = 0;
};

}  // namespace

StatusOr<ExactResult> SolveExact(const ProblemInstance& problem,
                                 const ExactSolverOptions& options) {
  Search search(problem, options);
  return search.Run();
}

}  // namespace webmon
