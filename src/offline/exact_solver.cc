#include "offline/exact_solver.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "model/completeness.h"
#include "util/bitset256.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace webmon {

namespace {

// Flattened instance view used by the search.
struct FlatEi {
  ResourceId resource;
  Chronon start;
  Chronon finish;
  uint32_t cei;  // index into FlatCei vector
};

struct FlatCei {
  Bitset256 mask;                // bit per flattened EI index
  std::vector<uint32_t> ei_idx;  // the same bits, as indices
  uint32_t required = 0;         // captures needed to satisfy the CEI
  double weight = 1.0;           // client utility of capturing the CEI
};

// A probe-able resource at some chronon together with the EI bits the probe
// would capture.
struct Candidate {
  ResourceId resource;
  Bitset256 gain;
};

// Advances `idx` to the next lexicographic `idx.size()`-combination of
// {0, ..., n - 1}; returns false when `idx` was already the last one.
bool NextCombination(std::vector<size_t>& idx, size_t n) {
  for (size_t i = idx.size(); i > 0;) {
    --i;
    if (idx[i] != i + n - idx.size()) {
      ++idx[i];
      for (size_t j = i + 1; j < idx.size(); ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
  }
  return false;
}

// Per-thread diagnostics, merged into ExactResult after the run.
struct SearchCounters {
  int64_t states = 0;
  int64_t pruned = 0;
  int64_t dominated = 0;
  int64_t memo_hits = 0;

  void MergeFrom(const SearchCounters& o) {
    states += o.states;
    pruned += o.pruned;
    dominated += o.dominated;
    memo_hits += o.memo_hits;
  }
};

// Lock-free running maximum for the shared incumbent.
void AtomicMax(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < value && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

class Search {
 public:
  Search(const ProblemInstance& problem, const ExactSolverOptions& options)
      : problem_(problem),
        options_(options),
        k_(problem.num_chronons()),
        memo_(static_cast<size_t>(std::max<Chronon>(k_, 0))) {
    for (const auto& profile : problem.profiles()) {
      for (const auto& cei : profile.ceis) {
        const uint32_t ci = static_cast<uint32_t>(ceis_.size());
        ceis_.push_back({});
        ceis_[ci].required = static_cast<uint32_t>(cei.RequiredCaptures());
        ceis_[ci].weight = cei.weight;
        for (const auto& ei : cei.eis) {
          const uint32_t e = static_cast<uint32_t>(eis_.size());
          eis_.push_back({ei.resource, ei.start, ei.finish, ci});
          if (e < static_cast<uint32_t>(Bitset256::kBits)) {
            ceis_[ci].mask.Set(static_cast<int>(e));
            ceis_[ci].ei_idx.push_back(e);
          }
        }
      }
    }
  }

  StatusOr<ExactResult> Run() {
    const int64_t cap =
        std::min<int64_t>(options_.max_eis, Bitset256::kBits);
    if (static_cast<int64_t>(eis_.size()) > cap) {
      return Status::InvalidArgument(
          "instance too large for exact search: " +
          std::to_string(eis_.size()) + " EIs > max " + std::to_string(cap));
    }

    ExactResult result{Schedule(problem_.num_resources(), k_)};

    // Phase 1 — establish the optimal value. The parallel variant only
    // races an order-independent max (the incumbent ends exactly at OPT no
    // matter how subtrees interleave), so the value — and everything
    // reconstructed from it — is identical at any thread count.
    Stopwatch search_watch;
    double opt = 0.0;
    if (options_.num_threads > 1 && k_ > 0) {
      WEBMON_ASSIGN_OR_RETURN(opt, SearchParallel());
    } else {
      WEBMON_ASSIGN_OR_RETURN(opt, Value(0, Bitset256()));
    }
    result.search_seconds = search_watch.ElapsedSeconds();
    result.captured_weight = opt;

    // Phase 2 — serial canonical reconstruction against exact values.
    Stopwatch reconstruct_watch;
    WEBMON_RETURN_IF_ERROR(Reconstruct(opt, &result.schedule));
    result.reconstruct_seconds = reconstruct_watch.ElapsedSeconds();

    result.states_expanded = counters_.states;
    result.subtrees_pruned = counters_.pruned;
    result.dominated_skipped = counters_.dominated;
    result.memo_hits = counters_.memo_hits;
    result.captured_ceis = CapturedCeiCount(problem_, result.schedule);
    result.completeness = GainedCompleteness(problem_, result.schedule);
    result.weighted_completeness =
        WeightedCompleteness(problem_, result.schedule);
    return result;
  }

 private:
  using VisitedSet = std::unordered_set<Bitset256, Bitset256::Hash>;

  struct ThreadState {
    std::vector<VisitedSet> visited;  // one per chronon
    SearchCounters counters;
    Status status = Status::OK();
  };

  // State shared across the parallel phase's workers. Deliberately
  // lock-free — no mutex, so there is nothing for GUARDED_BY to name: the
  // incumbent is a monotone CAS-max (AtomicMax) and the state budget a
  // fetch_add, both order-independent, which is exactly why the searched
  // VALUE is byte-identical at any thread count. Everything else a worker
  // touches is its own ThreadState.
  struct ParallelShared {
    std::atomic<double> incumbent{0.0};
    std::atomic<int64_t> states{0};
  };

  // True iff CEI ci is already satisfied under its capture semantics.
  bool Completed(uint32_t ci, const Bitset256& captured) const {
    return static_cast<uint32_t>(captured.CountAnd(ceis_[ci].mask)) >=
           ceis_[ci].required;
  }

  // True iff CEI ci can still be completed: the EIs whose windows have not
  // fully passed by chronon t, plus those already captured, suffice.
  bool Alive(uint32_t ci, Chronon t, const Bitset256& captured) const {
    uint32_t failed = 0;
    for (const uint32_t e : ceis_[ci].ei_idx) {
      if (captured.Test(static_cast<int>(e))) continue;
      if (eis_[e].finish < t) ++failed;
    }
    return static_cast<uint32_t>(ceis_[ci].ei_idx.size()) - failed >=
           ceis_[ci].required;
  }

  // Total weight of CEIs satisfied by `captured`, summed in ascending CEI
  // order. Every weight sum in the search uses this order, so a superset of
  // completed CEIs never float-sums below a subset (monotone rounding) —
  // the property the admissible bound and the reconstruction rely on.
  double CompletedWeight(const Bitset256& captured) const {
    double done = 0.0;
    for (uint32_t ci = 0; ci < ceis_.size(); ++ci) {
      if (Completed(ci, captured)) done += ceis_[ci].weight;
    }
    return done;
  }

  // Admissible upper bound on the final captured weight from (t, captured):
  // weight already locked in plus the weight of every CEI that is still
  // alive. A CEI neither completed nor alive can never contribute, and the
  // ascending-order float sum dominates any reachable CompletedWeight.
  double Bound(Chronon t, const Bitset256& captured) const {
    double ub = 0.0;
    for (uint32_t ci = 0; ci < ceis_.size(); ++ci) {
      if (Completed(ci, captured) || Alive(ci, t, captured)) {
        ub += ceis_[ci].weight;
      }
    }
    return ub;
  }

  // Candidate resources at chronon t: those with an active uncaptured EI
  // whose parent CEI is still alive and incomplete, in ascending resource
  // order — the reference solver's enumeration order, which reconstruction
  // must reproduce exactly.
  std::vector<Candidate> Candidates(Chronon t,
                                    const Bitset256& captured) const {
    std::unordered_map<ResourceId, Bitset256> gain;
    for (uint32_t e = 0; e < eis_.size(); ++e) {
      if (captured.Test(static_cast<int>(e))) continue;
      const FlatEi& ei = eis_[e];
      if (ei.start > t || ei.finish < t) continue;
      if (Completed(ei.cei, captured)) continue;  // nothing to gain
      if (!Alive(ei.cei, t, captured)) continue;
      gain[ei.resource].Set(static_cast<int>(e));
    }
    std::vector<Candidate> out;
    out.reserve(gain.size());
    // unordered-iter-ok: sorted drain — the map is emptied into `out`,
    // which the sort below orders by resource id (a unique map key), so
    // bucket order never reaches the search.
    for (const auto& [resource, mask] : gain) out.push_back({resource, mask});
    // total-order: resource ids are the map's keys, hence unique — no ties.
    std::sort(out.begin(), out.end(), [](const Candidate& a,
                                         const Candidate& b) {
      return a.resource < b.resource;
    });
    return out;
  }

  // Dominance filter: drop a candidate whose gain is a subset of another's
  // (ties keep the smaller resource id). Probing the dominator captures a
  // superset of EIs at the same unit cost, and captured-set supersets never
  // lower the reachable weight, so the optimal VALUE is unaffected —
  // reconstruction still enumerates the full list.
  std::vector<Candidate> FilterDominated(const std::vector<Candidate>& full,
                                         SearchCounters& counters) const {
    if (full.size() <= 1) return full;
    std::vector<Candidate> out;
    out.reserve(full.size());
    for (size_t i = 0; i < full.size(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < full.size() && !dominated; ++j) {
        if (i == j) continue;
        if (!full[i].gain.IsSubsetOf(full[j].gain)) continue;
        dominated = (full[i].gain != full[j].gain) || j < i;
      }
      if (dominated) {
        ++counters.dominated;
      } else {
        out.push_back(full[i]);
      }
    }
    return out;
  }

  // Exact best final captured weight reachable from (t, captured), as a
  // branch-and-bound with an internal incumbent: a child is skipped when
  // its bound cannot strictly beat the best sibling value so far, and the
  // node exits early once `best` meets its own bound. Both cuts preserve
  // the exact maximum (and the exact double: some surviving leaf always
  // attains it), so memoized values equal the reference solver's.
  StatusOr<double> Value(Chronon t, const Bitset256& captured) {
    if (t >= k_) return CompletedWeight(captured);
    auto& memo = memo_[static_cast<size_t>(t)];
    if (auto it = memo.find(captured); it != memo.end()) {
      ++counters_.memo_hits;
      return it->second;
    }
    if (options_.max_states > 0 && ++counters_.states > options_.max_states) {
      return Status::ResourceExhausted("exact search state budget exceeded");
    }

    const auto cands = FilterDominated(Candidates(t, captured), counters_);
    const int64_t budget = problem_.budget().At(t);
    const size_t pick =
        std::min<size_t>(cands.size(),
                         static_cast<size_t>(std::max<int64_t>(budget, 0)));
    double best = 0.0;
    if (pick == 0) {
      WEBMON_ASSIGN_OR_RETURN(best, Value(t + 1, captured));
    } else {
      const double ub = Bound(t, captured);
      std::vector<size_t> idx(pick);
      std::iota(idx.begin(), idx.end(), size_t{0});
      while (true) {
        Bitset256 next = captured;
        for (const size_t i : idx) next |= cands[i].gain;
        if (Bound(t + 1, next) <= best) {
          ++counters_.pruned;
        } else {
          WEBMON_ASSIGN_OR_RETURN(const double sub, Value(t + 1, next));
          best = std::max(best, sub);
          if (best >= ub) break;  // nothing left to gain at this node
        }
        if (!NextCombination(idx, cands.size())) break;
      }
    }
    WEBMON_DCHECK_GE(best, CompletedWeight(captured) - 1e-12)
        << "DFS bound dropped below the already-captured weight at chronon "
        << t;
    memo[captured] = best;
    return best;
  }

  // Phase-1 worker: prove `incumbent` >= best-from(t, captured), sharing
  // the incumbent across threads and keeping visited sets thread-local.
  // The prune check runs before the visited insert, so a revisit is safe:
  // the first visit already raised the incumbent to at least this state's
  // best, and the incumbent only grows.
  void Explore(Chronon t, const Bitset256& captured, ParallelShared& shared,
               ThreadState& ts) {
    if (!ts.status.ok()) return;
    if (t >= k_) {
      AtomicMax(shared.incumbent, CompletedWeight(captured));
      return;
    }
    if (Bound(t, captured) <=
        shared.incumbent.load(std::memory_order_relaxed)) {
      ++ts.counters.pruned;
      return;
    }
    if (!ts.visited[static_cast<size_t>(t)].insert(captured).second) {
      ++ts.counters.memo_hits;
      return;
    }
    if (options_.max_states > 0 &&
        shared.states.fetch_add(1, std::memory_order_relaxed) + 1 >
            options_.max_states) {
      ts.status = Status::ResourceExhausted("exact search state budget "
                                            "exceeded");
      return;
    }
    ++ts.counters.states;

    const auto cands = FilterDominated(Candidates(t, captured), ts.counters);
    const int64_t budget = problem_.budget().At(t);
    const size_t pick =
        std::min<size_t>(cands.size(),
                         static_cast<size_t>(std::max<int64_t>(budget, 0)));
    if (pick == 0) {
      Explore(t + 1, captured, shared, ts);
      return;
    }
    std::vector<size_t> idx(pick);
    std::iota(idx.begin(), idx.end(), size_t{0});
    do {
      Bitset256 next = captured;
      for (const size_t i : idx) next |= cands[i].gain;
      Explore(t + 1, next, shared, ts);
      if (!ts.status.ok()) return;
    } while (NextCombination(idx, cands.size()));
  }

  StatusOr<double> SearchParallel() {
    // Enumerate the root chronon's combinations serially, then fan the
    // subtrees across the pool with a shared incumbent.
    const Bitset256 empty;
    const auto cands = FilterDominated(Candidates(0, empty), counters_);
    const int64_t budget = problem_.budget().At(0);
    const size_t pick =
        std::min<size_t>(cands.size(),
                         static_cast<size_t>(std::max<int64_t>(budget, 0)));
    std::vector<Bitset256> roots;
    if (pick == 0) {
      roots.push_back(empty);
    } else {
      std::vector<size_t> idx(pick);
      std::iota(idx.begin(), idx.end(), size_t{0});
      do {
        Bitset256 next;
        for (const size_t i : idx) next |= cands[i].gain;
        roots.push_back(next);
      } while (NextCombination(idx, cands.size()));
    }

    ParallelShared shared;

    ThreadPool pool(options_.num_threads);
    const int lanes = pool.num_threads();
    std::vector<ThreadState> thread_states(static_cast<size_t>(lanes));
    for (auto& ts : thread_states) {
      ts.visited.resize(static_cast<size_t>(k_));
    }
    pool.ParallelFor(lanes, [&](int lane) {
      ThreadState& ts = thread_states[static_cast<size_t>(lane)];
      for (size_t r = static_cast<size_t>(lane); r < roots.size();
           r += static_cast<size_t>(lanes)) {
        Explore(1, roots[r], shared, ts);
        if (!ts.status.ok()) return;
      }
    });

    // ParallelFor's return is the join barrier: every worker write
    // happens-before these merges, which run on the driving thread alone.
    counters_.states += shared.states.load();
    for (const auto& ts : thread_states) {
      if (!ts.status.ok()) return ts.status;
      counters_.pruned += ts.counters.pruned;
      counters_.dominated += ts.counters.dominated;
      counters_.memo_hits += ts.counters.memo_hits;
    }
    return shared.incumbent.load();
  }

  // Replays an optimal path against exact values, writing probes into
  // `schedule`. Enumerates the FULL candidate list in reference order and
  // accepts the first combination whose subtree value meets the target, so
  // the schedule is byte-identical to the reference solver's. A bound
  // check fast-rejects combinations whose subtree could not reach the
  // target (bound >= value, so every skipped combination is one the
  // reference also rejects).
  Status Reconstruct(double opt, Schedule* schedule) {
    constexpr double kEps = 1e-9;
    Chronon t = 0;
    Bitset256 captured;
    double target = opt;
    while (t < k_) {
      const auto candidates = Candidates(t, captured);
      const int64_t budget = problem_.budget().At(t);
      const size_t pick = std::min<size_t>(
          candidates.size(),
          static_cast<size_t>(std::max<int64_t>(budget, 0)));
      if (pick == 0) {
        // No probes possible: the value carries over unchanged.
        t += 1;
        continue;
      }
      std::vector<size_t> idx(pick);
      std::iota(idx.begin(), idx.end(), size_t{0});
      bool advanced = false;
      while (!advanced) {
        Bitset256 next = captured;
        for (const size_t i : idx) next |= candidates[i].gain;
        bool accept = false;
        double sub = 0.0;
        if (Bound(t + 1, next) >= target - kEps) {
          WEBMON_ASSIGN_OR_RETURN(sub, Value(t + 1, next));
          accept = sub >= target - kEps;
        }
        if (accept) {
          for (const size_t i : idx) {
            WEBMON_RETURN_IF_ERROR(
                schedule->AddProbe(candidates[i].resource, t));
          }
          captured = next;
          target = sub;
          t += 1;
          advanced = true;
        } else if (!NextCombination(idx, candidates.size())) {
          return Status::Internal("exact reconstruction diverged from search");
        }
      }
    }
    return Status::OK();
  }

  const ProblemInstance& problem_;
  ExactSolverOptions options_;
  Chronon k_;
  std::vector<FlatEi> eis_;
  std::vector<FlatCei> ceis_;
  // Exact-value memo for phase 2, one table per chronon.
  std::vector<std::unordered_map<Bitset256, double, Bitset256::Hash>> memo_;
  SearchCounters counters_;
};

}  // namespace

StatusOr<ExactResult> SolveExact(const ProblemInstance& problem,
                                 const ExactSolverOptions& options) {
  Search search(problem, options);
  return search.Run();
}

}  // namespace webmon
