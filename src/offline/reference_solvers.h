// Frozen pre-optimization offline solvers, kept as differential oracles.
//
// These are verbatim copies of the exact and approximate solvers as they
// stood before the branch-and-bound / interval-index performance pass
// (post memo-key fix), in the spirit of the naive Algorithm 1 replica in
// tests/online/reference_scheduler_test.cc. They exist so that
//  * tests/offline/offline_differential_test.cc can assert the optimized
//    solvers return byte-identical schedules on random instances, and
//  * bench/bench_offline_scaling can report optimized-vs-reference
//    speedups.
// Do not optimize these; that would defeat their purpose.

#ifndef WEBMON_OFFLINE_REFERENCE_SOLVERS_H_
#define WEBMON_OFFLINE_REFERENCE_SOLVERS_H_

#include "offline/exact_solver.h"
#include "offline/offline_approx.h"
#include "model/problem.h"
#include "util/status.h"

namespace webmon {

/// Pre-optimization exact solver: memoized DFS with no bounding and a
/// uint64_t capture mask (hard 64-EI ceiling regardless of
/// `options.max_eis`). Single-threaded; ignores `options.num_threads`.
StatusOr<ExactResult> SolveExactReference(
    const ProblemInstance& problem, const ExactSolverOptions& options = {});

/// Pre-optimization local-ratio baseline: O(V^2) pairwise zeroing sweep
/// and find_if-based demand accumulation.
StatusOr<OfflineApproxResult> SolveOfflineApproxReference(
    const ProblemInstance& problem, const OfflineApproxOptions& options = {});

/// Pre-optimization greedy slot-assignment baseline with linear booked
/// scans.
StatusOr<OfflineApproxResult> SolveOfflineGreedyReference(
    const ProblemInstance& problem, const OfflineGreedyOptions& options = {});

}  // namespace webmon

#endif  // WEBMON_OFFLINE_REFERENCE_SOLVERS_H_
