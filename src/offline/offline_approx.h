// Offline baselines for Problem 1 (paper Section IV-B.2).
//
// SolveOfflineApprox — the paper's baseline: the Local Ratio scheme of
// Bar-Yehuda et al. for scheduling t-intervals, applied to CEIs as split
// intervals. Each CEI's EIs are treated as machine segments: a selected CEI
// exclusively occupies every chronon its EIs span (per budget unit), and two
// CEIs conflict when their segments would exceed the per-chronon budget.
// With the paper's unit profit per CEI the local-ratio weight decomposition
// reduces to selecting CEIs in earliest-completion order and zeroing the
// residual weight of their conflict neighborhoods. The machine model cannot
// share probes across CEIs (the paper notes its bounds hold only without
// intra-resource overlaps) and requires the full CEI set in advance; its
// conflict-neighborhood sweeps make it far more expensive per EI than the
// online policies, as Section V-D measures. Guarantees 2k / (2k+1)
// approximation on P^[1] instances (2k+2 / 2k+3 after the Proposition 5
// transformation).
//
// SolveOfflineGreedy — a stronger non-paper baseline: greedy
// earliest-completion commitment with explicit per-chronon slot assignment
// and optional free-riding on probes shared between CEIs. Provided for
// ablation: it shows how much of the online policies' advantage over the
// paper's baseline stems from the machine model's inability to share
// probes.

#ifndef WEBMON_OFFLINE_OFFLINE_APPROX_H_
#define WEBMON_OFFLINE_OFFLINE_APPROX_H_

#include <cstdint>

#include "model/problem.h"
#include "model/schedule.h"
#include "util/status.h"

namespace webmon {

/// Result of an offline baseline solve.
struct OfflineApproxResult {
  Schedule schedule;
  /// CEIs the solver explicitly committed (selected independent set size).
  int64_t committed_ceis = 0;
  /// Eq. 1 completeness of the schedule (includes opportunistic captures of
  /// non-committed CEIs by shared probes).
  double completeness = 0.0;
  /// Wall time of the solve, seconds.
  double wall_seconds = 0.0;
  /// Phase timers (diagnostics, surfaced by `webmon_cli offline --timing`):
  /// P^[1] transformation, earliest-completion sort, and the
  /// selection/commit loop, seconds.
  double transform_seconds = 0.0;
  double sort_seconds = 0.0;
  double select_seconds = 0.0;
};

/// Options for the local-ratio approximation.
struct OfflineApproxOptions {
  /// If true, first apply the Proposition 5 transformation (only feasible
  /// for narrow instances; fails with ResourceExhausted otherwise).
  bool transform_to_p1 = false;
  int64_t max_transform_ceis = 100000;
};

/// The paper's offline approximation (local ratio on split intervals).
StatusOr<OfflineApproxResult> SolveOfflineApprox(
    const ProblemInstance& problem, const OfflineApproxOptions& options = {});

/// Options for the greedy slot-assignment baseline.
struct OfflineGreedyOptions {
  /// Allow an EI to free-ride on a probe committed for another CEI on the
  /// same resource within the EI's window.
  bool allow_shared_probes = true;
};

/// The stronger non-paper greedy baseline (see file comment).
StatusOr<OfflineApproxResult> SolveOfflineGreedy(
    const ProblemInstance& problem, const OfflineGreedyOptions& options = {});

}  // namespace webmon

#endif  // WEBMON_OFFLINE_OFFLINE_APPROX_H_
