#include "offline/reference_solvers.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/completeness.h"
#include "offline/p1_transform.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace webmon {

namespace {

// ---------------------------------------------------------------------------
// Reference exact solver: memoized DFS, no bounding, 64-bit capture mask.
// ---------------------------------------------------------------------------

struct RefFlatEi {
  ResourceId resource;
  Chronon start;
  Chronon finish;
  uint32_t cei;  // index into RefFlatCei vector
};

struct RefFlatCei {
  uint64_t mask = 0;      // bit per flattened EI index
  uint32_t size = 0;      // number of EIs
  uint32_t required = 0;  // captures needed to satisfy the CEI
  double weight = 1.0;    // client utility of capturing the CEI
};

class ReferenceSearch {
 public:
  ReferenceSearch(const ProblemInstance& problem,
                  const ExactSolverOptions& options)
      : problem_(problem),
        options_(options),
        k_(problem.num_chronons()),
        memo_(static_cast<size_t>(std::max<Chronon>(k_, 0))) {
    for (const auto& profile : problem.profiles()) {
      for (const auto& cei : profile.ceis) {
        const uint32_t ci = static_cast<uint32_t>(ceis_.size());
        ceis_.push_back({});
        ceis_[ci].size = static_cast<uint32_t>(cei.eis.size());
        ceis_[ci].required = static_cast<uint32_t>(cei.RequiredCaptures());
        ceis_[ci].weight = cei.weight;
        for (const auto& ei : cei.eis) {
          const uint32_t e = static_cast<uint32_t>(eis_.size());
          eis_.push_back({ei.resource, ei.start, ei.finish, ci});
          ceis_[ci].mask |= (uint64_t{1} << (e & 63));
        }
      }
    }
  }

  StatusOr<ExactResult> Run() {
    // The uint64_t capture mask caps this solver at 64 EIs no matter what
    // options.max_eis says.
    const int64_t cap = std::min<int64_t>(options_.max_eis, 64);
    if (static_cast<int64_t>(eis_.size()) > cap) {
      return Status::InvalidArgument(
          "instance too large for reference exact search: " +
          std::to_string(eis_.size()) + " EIs > max " + std::to_string(cap));
    }
    states_ = 0;
    WEBMON_ASSIGN_OR_RETURN(const double best, Dfs(0, 0));

    ExactResult result{Schedule(problem_.num_resources(), k_)};
    result.captured_weight = best;
    result.states_expanded = states_;
    WEBMON_RETURN_IF_ERROR(Reconstruct(&result.schedule));
    result.captured_ceis = CapturedCeiCount(problem_, result.schedule);
    result.completeness = GainedCompleteness(problem_, result.schedule);
    result.weighted_completeness =
        WeightedCompleteness(problem_, result.schedule);
    return result;
  }

 private:
  bool Completed(uint32_t ci, uint64_t captured) const {
    return static_cast<uint32_t>(
               __builtin_popcountll(captured & ceis_[ci].mask)) >=
           ceis_[ci].required;
  }

  bool Alive(uint32_t ci, Chronon t, uint64_t captured) const {
    uint32_t failed = 0;
    uint64_t mask = ceis_[ci].mask;
    while (mask != 0) {
      const int e = __builtin_ctzll(mask);
      mask &= mask - 1;
      if ((captured >> e) & 1) continue;
      if (eis_[static_cast<size_t>(e)].finish < t) ++failed;
    }
    return ceis_[ci].size - failed >= ceis_[ci].required;
  }

  double CompletedWeight(uint64_t captured) const {
    double done = 0.0;
    for (uint32_t ci = 0; ci < ceis_.size(); ++ci) {
      if (Completed(ci, captured)) done += ceis_[ci].weight;
    }
    return done;
  }

  std::vector<std::pair<ResourceId, uint64_t>> Candidates(
      Chronon t, uint64_t captured) const {
    std::unordered_map<ResourceId, uint64_t> gain;
    for (uint32_t e = 0; e < eis_.size(); ++e) {
      if ((captured >> e) & 1) continue;
      const RefFlatEi& ei = eis_[e];
      if (ei.start > t || ei.finish < t) continue;
      if (Completed(ei.cei, captured)) continue;
      if (!Alive(ei.cei, t, captured)) continue;
      gain[ei.resource] |= (uint64_t{1} << e);
    }
    // unordered-iter-ok: sorted drain — the map is copied into `out` and
    // immediately sorted by its unique resource-id key, erasing bucket
    // order before anything consumes the list.
    std::vector<std::pair<ResourceId, uint64_t>> out(gain.begin(), gain.end());
    // total-order: pair comparison on a unique first element — no ties.
    std::sort(out.begin(), out.end());
    return out;
  }

  StatusOr<double> Dfs(Chronon t, uint64_t captured) {
    if (t >= k_) return CompletedWeight(captured);
    auto& memo = memo_[static_cast<size_t>(t)];
    if (auto it = memo.find(captured); it != memo.end()) return it->second;
    if (options_.max_states > 0 && ++states_ > options_.max_states) {
      return Status::ResourceExhausted(
          "reference exact search state budget exceeded");
    }

    const auto candidates = Candidates(t, captured);
    const int64_t budget = problem_.budget().At(t);
    const size_t pick =
        std::min<size_t>(candidates.size(), static_cast<size_t>(
                                                std::max<int64_t>(budget, 0)));
    double best = 0;
    if (pick == 0) {
      WEBMON_ASSIGN_OR_RETURN(best, Dfs(t + 1, captured));
    } else {
      std::vector<size_t> idx(pick);
      for (size_t i = 0; i < pick; ++i) idx[i] = i;
      while (true) {
        uint64_t next_captured = captured;
        for (size_t i = 0; i < pick; ++i) {
          next_captured |= candidates[idx[i]].second;
        }
        auto sub = Dfs(t + 1, next_captured);
        if (!sub.ok()) return sub.status();
        best = std::max(best, *sub);
        size_t i = pick;
        while (i > 0) {
          --i;
          if (idx[i] != i + candidates.size() - pick) break;
          if (i == 0) {
            i = pick;  // signal done
            break;
          }
        }
        if (i == pick) break;
        ++idx[i];
        for (size_t j = i + 1; j < pick; ++j) idx[j] = idx[j - 1] + 1;
      }
    }
    memo[captured] = best;
    return best;
  }

  Status Reconstruct(Schedule* schedule) {
    constexpr double kEps = 1e-9;
    Chronon t = 0;
    uint64_t captured = 0;
    while (t < k_) {
      WEBMON_ASSIGN_OR_RETURN(const double target, Dfs(t, captured));
      const auto candidates = Candidates(t, captured);
      const int64_t budget = problem_.budget().At(t);
      const size_t pick = std::min<size_t>(
          candidates.size(),
          static_cast<size_t>(std::max<int64_t>(budget, 0)));
      bool advanced = false;
      if (pick == 0) {
        t += 1;
        advanced = true;
      } else {
        std::vector<size_t> idx(pick);
        for (size_t i = 0; i < pick; ++i) idx[i] = i;
        while (!advanced) {
          uint64_t next_captured = captured;
          for (size_t i = 0; i < pick; ++i) {
            next_captured |= candidates[idx[i]].second;
          }
          WEBMON_ASSIGN_OR_RETURN(const double sub, Dfs(t + 1, next_captured));
          if (sub >= target - kEps) {
            for (size_t i = 0; i < pick; ++i) {
              WEBMON_RETURN_IF_ERROR(
                  schedule->AddProbe(candidates[idx[i]].first, t));
            }
            captured = next_captured;
            t += 1;
            advanced = true;
            break;
          }
          size_t i = pick;
          while (i > 0) {
            --i;
            if (idx[i] != i + candidates.size() - pick) break;
            if (i == 0) {
              i = pick;
              break;
            }
          }
          if (i == pick) {
            return Status::Internal(
                "reference exact reconstruction diverged from memo");
          }
          ++idx[i];
          for (size_t j = i + 1; j < pick; ++j) idx[j] = idx[j - 1] + 1;
        }
      }
    }
    return Status::OK();
  }

  const ProblemInstance& problem_;
  ExactSolverOptions options_;
  Chronon k_;
  std::vector<RefFlatEi> eis_;
  std::vector<RefFlatCei> ceis_;
  std::vector<std::unordered_map<uint64_t, double>> memo_;  // one per chronon
  int64_t states_ = 0;
};

// ---------------------------------------------------------------------------
// Reference local-ratio solver: O(V^2) zeroing sweep.
// ---------------------------------------------------------------------------

bool SegmentsOverlap(const Cei& a, const Cei& b) {
  for (const auto& ea : a.eis) {
    for (const auto& eb : b.eis) {
      if (ea.start <= eb.finish && eb.start <= ea.finish) return true;
    }
  }
  return false;
}

OfflineApproxResult SolveLocalRatioReference(const ProblemInstance& problem) {
  Stopwatch watch;
  const Chronon k = problem.num_chronons();

  std::vector<const Cei*> ceis = problem.AllCeis();
  // total-order: final tie-break on the unique CEI id — no equal elements
  // (the pointees are compared, never the pointers).
  std::sort(ceis.begin(), ceis.end(), [](const Cei* a, const Cei* b) {
    const Chronon fa = a->LatestFinish();
    const Chronon fb = b->LatestFinish();
    if (fa != fb) return fa < fb;
    const Chronon ca = a->TotalChronons();
    const Chronon cb = b->TotalChronons();
    if (ca != cb) return ca < cb;
    return a->id < b->id;
  });

  std::vector<double> weight(ceis.size(), 1.0);
  std::vector<int64_t> coverage(static_cast<size_t>(k), 0);

  Schedule schedule(problem.num_resources(), k);
  int64_t committed = 0;

  for (size_t vi = 0; vi < ceis.size(); ++vi) {
    if (weight[vi] <= 0.0) continue;
    const Cei& v = *ceis[vi];

    std::vector<std::pair<Chronon, int64_t>> demand;  // chronon -> segments
    for (const auto& ei : v.eis) {
      for (Chronon t = ei.start; t <= ei.finish; ++t) {
        auto it = std::find_if(demand.begin(), demand.end(),
                               [t](const auto& d) { return d.first == t; });
        if (it == demand.end()) {
          demand.emplace_back(t, 1);
        } else {
          ++it->second;
        }
      }
    }
    bool feasible = true;
    for (const auto& [t, units] : demand) {
      if (coverage[static_cast<size_t>(t)] + units > problem.budget().At(t)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      weight[vi] = 0.0;
      continue;
    }

    for (const auto& ei : v.eis) {
      for (Chronon t = ei.start; t <= ei.finish; ++t) {
        ++coverage[static_cast<size_t>(t)];
      }
    }
    ++committed;
    for (const auto& ei : v.eis) {
      Status st = schedule.AddProbe(ei.resource, ei.start);
      (void)st;  // AlreadyExists: the physical probe is shared.
    }

    for (size_t ui = 0; ui < ceis.size(); ++ui) {
      if (ui == vi || weight[ui] <= 0.0) continue;
      const Cei& u = *ceis[ui];
      if (!SegmentsOverlap(v, u)) continue;
      bool blocked = false;
      for (const auto& ei : u.eis) {
        for (Chronon t = ei.start; t <= ei.finish && !blocked; ++t) {
          if (coverage[static_cast<size_t>(t)] >= problem.budget().At(t)) {
            blocked = true;
          }
        }
        if (blocked) break;
      }
      if (blocked) weight[ui] = 0.0;
    }
  }

  OfflineApproxResult result{std::move(schedule)};
  result.committed_ceis = committed;
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

// ---------------------------------------------------------------------------
// Reference greedy slot assigner: linear booked scans.
// ---------------------------------------------------------------------------

class ReferenceSlotAssigner {
 public:
  ReferenceSlotAssigner(Schedule* schedule, std::vector<int64_t>* remaining,
                        bool allow_shared_probes)
      : schedule_(schedule),
        remaining_(remaining),
        allow_shared_probes_(allow_shared_probes) {}

  bool TryCommit(const Cei& cei) {
    std::vector<const ExecutionInterval*> order;
    order.reserve(cei.eis.size());
    for (const auto& ei : cei.eis) order.push_back(&ei);
    // total-order: final tie-break on the unique EI id — no equal elements
    // (the pointees are compared, never the pointers).
    std::sort(order.begin(), order.end(),
              [](const ExecutionInterval* a, const ExecutionInterval* b) {
                if (a->Length() != b->Length()) {
                  return a->Length() < b->Length();
                }
                return a->id < b->id;
              });

    std::vector<std::pair<ResourceId, Chronon>> booked;
    for (const ExecutionInterval* ei : order) {
      if (allow_shared_probes_) {
        bool satisfied =
            schedule_->ProbedInRange(ei->resource, ei->start, ei->finish);
        if (!satisfied) {
          for (const auto& [r, t] : booked) {
            if (r == ei->resource && ei->Contains(t)) {
              satisfied = true;
              break;
            }
          }
        }
        if (satisfied) continue;
      }

      Chronon chosen = kInvalidChronon;
      for (Chronon t = ei->start; t <= ei->finish; ++t) {
        int64_t tentative = 0;
        for (const auto& [r, t2] : booked) {
          if (t2 == t) ++tentative;
        }
        if ((*remaining_)[static_cast<size_t>(t)] - tentative > 0) {
          chosen = t;
          break;
        }
      }
      if (chosen == kInvalidChronon) return false;
      booked.emplace_back(ei->resource, chosen);
    }

    for (const auto& [r, t] : booked) {
      --(*remaining_)[static_cast<size_t>(t)];
      Status st = schedule_->AddProbe(r, t);
      (void)st;  // AlreadyExists: the probe is shared physically.
    }
    return true;
  }

 private:
  Schedule* schedule_;
  std::vector<int64_t>* remaining_;
  bool allow_shared_probes_;
};

}  // namespace

StatusOr<ExactResult> SolveExactReference(const ProblemInstance& problem,
                                          const ExactSolverOptions& options) {
  ReferenceSearch search(problem, options);
  return search.Run();
}

StatusOr<OfflineApproxResult> SolveOfflineApproxReference(
    const ProblemInstance& problem, const OfflineApproxOptions& options) {
  if (!options.transform_to_p1) {
    return SolveLocalRatioReference(problem);
  }
  Stopwatch watch;
  WEBMON_ASSIGN_OR_RETURN(
      P1TransformResult transformed,
      TransformToP1(problem, options.max_transform_ceis));
  OfflineApproxResult result = SolveLocalRatioReference(transformed.problem);
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

StatusOr<OfflineApproxResult> SolveOfflineGreedyReference(
    const ProblemInstance& problem, const OfflineGreedyOptions& options) {
  Stopwatch watch;
  const Chronon k = problem.num_chronons();
  Schedule schedule(problem.num_resources(), k);
  std::vector<int64_t> remaining(static_cast<size_t>(k));
  for (Chronon t = 0; t < k; ++t) {
    remaining[static_cast<size_t>(t)] = problem.budget().At(t);
  }

  std::vector<const Cei*> order = problem.AllCeis();
  // total-order: final tie-break on the unique CEI id — no equal elements
  // (the pointees are compared, never the pointers).
  std::sort(order.begin(), order.end(), [](const Cei* a, const Cei* b) {
    const Chronon fa = a->LatestFinish();
    const Chronon fb = b->LatestFinish();
    if (fa != fb) return fa < fb;
    const Chronon ca = a->TotalChronons();
    const Chronon cb = b->TotalChronons();
    if (ca != cb) return ca < cb;
    return a->id < b->id;
  });

  ReferenceSlotAssigner assigner(&schedule, &remaining,
                                 options.allow_shared_probes);
  int64_t committed = 0;
  for (const Cei* cei : order) {
    if (assigner.TryCommit(*cei)) ++committed;
  }

  OfflineApproxResult result{std::move(schedule)};
  result.committed_ceis = committed;
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace webmon
