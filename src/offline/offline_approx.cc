#include "offline/offline_approx.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "model/completeness.h"
#include "offline/p1_transform.h"
#include "util/stopwatch.h"

namespace webmon {

namespace {

// ---------------------------------------------------------------------------
// Local-ratio solver (the paper's baseline).
// ---------------------------------------------------------------------------
//
// Selection semantics are frozen by the differential suite
// (tests/offline/offline_differential_test.cc): this must produce schedules
// byte-identical to SolveOfflineApproxReference. The optimizations below are
// all selection-neutral:
//  * the earliest-completion sort is decorate-sorted on memoized
//    (LatestFinish, TotalChronons) keys — same total order;
//  * per-CEI demand uses an epoch-stamped flat per-chronon array instead of
//    a find_if list — same feasibility verdicts;
//  * the O(V^2) pairwise zeroing sweep becomes a per-chronon bucket index
//    touched only for chronons the selection exhausts. Zeroing never
//    changes the selected set in the first place: a CEI spanning an
//    exhausted chronon t fails its own feasibility check when its turn
//    comes (coverage[t] >= budget[t] implies coverage[t] + units >
//    budget[t], and coverage never decreases), so which superset of those
//    CEIs gets pre-zeroed only affects how much work is skipped, not what
//    is selected.

OfflineApproxResult SolveLocalRatio(const ProblemInstance& problem) {
  Stopwatch watch;
  const Chronon k = problem.num_chronons();
  const size_t num_slots = static_cast<size_t>(std::max<Chronon>(k, 0));

  // Earliest-completion order: the local-ratio selection rule picks the
  // positive-weight CEI whose last segment ends first.
  Stopwatch sort_watch;
  struct Entry {
    const Cei* cei;
    Chronon latest_finish;
    Chronon total_chronons;
  };
  std::vector<Entry> order;
  {
    const std::vector<const Cei*> all = problem.AllCeis();
    order.reserve(all.size());
    for (const Cei* cei : all) {
      order.push_back({cei, cei->LatestFinish(), cei->TotalChronons()});
    }
  }
  // total-order: final tie-break on the unique CEI id — no equal elements.
  std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    if (a.latest_finish != b.latest_finish) {
      return a.latest_finish < b.latest_finish;
    }
    if (a.total_chronons != b.total_chronons) {
      return a.total_chronons < b.total_chronons;
    }
    return a.cei->id < b.cei->id;
  });
  const double sort_seconds = sort_watch.ElapsedSeconds();

  Stopwatch select_watch;
  // Flat per-chronon tables: budget (hoisted out of BudgetVector::At),
  // committed segment coverage, and an epoch-stamped demand scratch whose
  // per-CEI reset costs O(chronons touched), not O(K).
  std::vector<int64_t> budget(num_slots, 0);
  for (Chronon t = 0; t < k; ++t) {
    budget[static_cast<size_t>(t)] = problem.budget().At(t);
  }
  std::vector<int64_t> coverage(num_slots, 0);
  std::vector<int64_t> demand(num_slots, 0);
  std::vector<size_t> demand_epoch(num_slots, 0);
  size_t epoch = 0;

  // Interval index: chronon -> sorted positions of the CEIs with a segment
  // covering it. Duplicates (a CEI covering t with two EIs) are harmless —
  // zeroing is idempotent.
  std::vector<std::vector<uint32_t>> bucket(num_slots);
  for (uint32_t vi = 0; vi < order.size(); ++vi) {
    for (const auto& ei : order[vi].cei->eis) {
      for (Chronon t = ei.start; t <= ei.finish; ++t) {
        bucket[static_cast<size_t>(t)].push_back(vi);
      }
    }
  }

  // selectable[vi] <=> residual local-ratio weight still positive.
  std::vector<char> selectable(order.size(), 1);

  Schedule schedule(problem.num_resources(), k);
  int64_t committed = 0;
  std::vector<Chronon> touched;

  for (size_t vi = 0; vi < order.size(); ++vi) {
    if (!selectable[vi]) continue;
    const Cei& v = *order[vi].cei;

    // Feasibility in the machine model: every chronon any EI of v spans
    // must have a free budget unit per covering segment (two EIs of v
    // overlapping in time each need their own unit).
    ++epoch;
    touched.clear();
    bool feasible = true;
    for (const auto& ei : v.eis) {
      for (Chronon t = ei.start; t <= ei.finish; ++t) {
        const size_t st = static_cast<size_t>(t);
        if (demand_epoch[st] != epoch) {
          demand_epoch[st] = epoch;
          demand[st] = 0;
          touched.push_back(t);
        }
        ++demand[st];
        if (coverage[st] + demand[st] > budget[st]) {
          feasible = false;
          break;
        }
      }
      if (!feasible) break;
    }
    if (!feasible) {
      selectable[vi] = 0;
      continue;
    }

    // Select v: occupy its segments, probe each EI at its start chronon
    // (segment ownership guarantees per-chronon feasibility).
    for (const auto& ei : v.eis) {
      for (Chronon t = ei.start; t <= ei.finish; ++t) {
        ++coverage[static_cast<size_t>(t)];
      }
    }
    ++committed;
    for (const auto& ei : v.eis) {
      Status st = schedule.AddProbe(ei.resource, ei.start);
      (void)st;  // AlreadyExists: the physical probe is shared.
    }

    // Neighborhood zeroing via the interval index: only the buckets of
    // chronons this selection exhausted are walked, and each such bucket
    // is dropped for good. (Only chronons v touched can have flipped to
    // exhausted.)
    for (const Chronon t : touched) {
      const size_t st = static_cast<size_t>(t);
      if (coverage[st] >= budget[st]) {
        for (const uint32_t ui : bucket[st]) selectable[ui] = 0;
        bucket[st].clear();
        bucket[st].shrink_to_fit();
      }
    }
  }
  const double select_seconds = select_watch.ElapsedSeconds();

  OfflineApproxResult result{std::move(schedule), committed, 0.0, 0.0};
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.sort_seconds = sort_seconds;
  result.select_seconds = select_seconds;
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

// ---------------------------------------------------------------------------
// Greedy slot-assignment solver (stronger non-paper baseline).
// ---------------------------------------------------------------------------

// Greedy slot assignment for one CEI against the committed bookings.
// On success commits the bookings and returns true; on failure leaves all
// state untouched and returns false. The per-slot tentative counter
// replaces the reference's linear booked-list scan per candidate chronon;
// it is rolled back after every attempt, so decisions are unchanged.
class SlotAssigner {
 public:
  SlotAssigner(Schedule* schedule, std::vector<int64_t>* remaining,
               bool allow_shared_probes)
      : schedule_(schedule),
        remaining_(remaining),
        allow_shared_probes_(allow_shared_probes),
        tentative_(remaining->size(), 0) {}

  bool TryCommit(const Cei& cei) {
    // Assign tight windows first: an EI with fewer feasible chronons is
    // harder to place.
    order_.clear();
    for (const auto& ei : cei.eis) order_.push_back(&ei);
    // total-order: final tie-break on the unique EI id — no equal elements
    // (the pointees are compared, never the pointers).
    std::sort(order_.begin(), order_.end(),
              [](const ExecutionInterval* a, const ExecutionInterval* b) {
                if (a->Length() != b->Length()) {
                  return a->Length() < b->Length();
                }
                return a->id < b->id;
              });

    booked_.clear();
    bool placed_all = true;
    for (const ExecutionInterval* ei : order_) {
      if (allow_shared_probes_) {
        bool satisfied =
            schedule_->ProbedInRange(ei->resource, ei->start, ei->finish);
        if (!satisfied) {
          for (const auto& [r, t] : booked_) {
            if (r == ei->resource && ei->Contains(t)) {
              satisfied = true;
              break;
            }
          }
        }
        if (satisfied) continue;
      }

      Chronon chosen = kInvalidChronon;
      for (Chronon t = ei->start; t <= ei->finish; ++t) {
        if ((*remaining_)[static_cast<size_t>(t)] -
                tentative_[static_cast<size_t>(t)] >
            0) {
          chosen = t;
          break;
        }
      }
      if (chosen == kInvalidChronon) {
        placed_all = false;
        break;
      }
      booked_.emplace_back(ei->resource, chosen);
      ++tentative_[static_cast<size_t>(chosen)];
    }

    // Tentative marks roll back either way; on success they convert into
    // real bookings.
    for (const auto& [r, t] : booked_) --tentative_[static_cast<size_t>(t)];
    if (!placed_all) return false;
    for (const auto& [r, t] : booked_) {
      --(*remaining_)[static_cast<size_t>(t)];
      Status st = schedule_->AddProbe(r, t);
      (void)st;  // AlreadyExists: the probe is shared physically.
    }
    return true;
  }

 private:
  Schedule* schedule_;
  std::vector<int64_t>* remaining_;
  bool allow_shared_probes_;
  std::vector<int64_t> tentative_;
  std::vector<const ExecutionInterval*> order_;
  std::vector<std::pair<ResourceId, Chronon>> booked_;
};

}  // namespace

StatusOr<OfflineApproxResult> SolveOfflineApprox(
    const ProblemInstance& problem, const OfflineApproxOptions& options) {
  if (!options.transform_to_p1) {
    return SolveLocalRatio(problem);
  }
  Stopwatch watch;
  Stopwatch transform_watch;
  WEBMON_ASSIGN_OR_RETURN(
      P1TransformResult transformed,
      TransformToP1(problem, options.max_transform_ceis));
  const double transform_seconds = transform_watch.ElapsedSeconds();
  OfflineApproxResult result = SolveLocalRatio(transformed.problem);
  // Evaluate the schedule against the ORIGINAL instance: identical
  // resources, epoch and budget make it directly feasible there.
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.transform_seconds = transform_seconds;
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

StatusOr<OfflineApproxResult> SolveOfflineGreedy(
    const ProblemInstance& problem, const OfflineGreedyOptions& options) {
  Stopwatch watch;
  const Chronon k = problem.num_chronons();
  Schedule schedule(problem.num_resources(), k);
  std::vector<int64_t> remaining(static_cast<size_t>(k));
  for (Chronon t = 0; t < k; ++t) {
    remaining[static_cast<size_t>(t)] = problem.budget().At(t);
  }

  // Decorate-sort on memoized keys, same earliest-completion total order
  // as the local-ratio solver.
  Stopwatch sort_watch;
  struct Entry {
    const Cei* cei;
    Chronon latest_finish;
    Chronon total_chronons;
  };
  std::vector<Entry> order;
  {
    const std::vector<const Cei*> all = problem.AllCeis();
    order.reserve(all.size());
    for (const Cei* cei : all) {
      order.push_back({cei, cei->LatestFinish(), cei->TotalChronons()});
    }
  }
  // total-order: final tie-break on the unique CEI id — no equal elements.
  std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    if (a.latest_finish != b.latest_finish) {
      return a.latest_finish < b.latest_finish;
    }
    if (a.total_chronons != b.total_chronons) {
      return a.total_chronons < b.total_chronons;
    }
    return a.cei->id < b.cei->id;
  });
  const double sort_seconds = sort_watch.ElapsedSeconds();

  Stopwatch select_watch;
  SlotAssigner assigner(&schedule, &remaining, options.allow_shared_probes);
  int64_t committed = 0;
  for (const Entry& entry : order) {
    if (assigner.TryCommit(*entry.cei)) ++committed;
  }
  const double select_seconds = select_watch.ElapsedSeconds();

  OfflineApproxResult result{std::move(schedule), committed, 0.0, 0.0};
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.sort_seconds = sort_seconds;
  result.select_seconds = select_seconds;
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace webmon
