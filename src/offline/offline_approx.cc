#include "offline/offline_approx.h"

#include <algorithm>
#include <vector>

#include "model/completeness.h"
#include "offline/p1_transform.h"
#include "util/stopwatch.h"

namespace webmon {

namespace {

// ---------------------------------------------------------------------------
// Local-ratio solver (the paper's baseline).
// ---------------------------------------------------------------------------

// True iff the CEI pair cannot both be selected in the machine model:
// selecting both would push some chronon's segment coverage above the
// budget. `coverage` is the current per-chronon committed segment count;
// the test is evaluated for v against u assuming u is already selected, so
// it reduces to a pairwise segment-overlap test used during neighborhood
// zeroing.
bool SegmentsOverlap(const Cei& a, const Cei& b) {
  for (const auto& ea : a.eis) {
    for (const auto& eb : b.eis) {
      if (ea.start <= eb.finish && eb.start <= ea.finish) return true;
    }
  }
  return false;
}

OfflineApproxResult SolveLocalRatio(const ProblemInstance& problem) {
  Stopwatch watch;
  const Chronon k = problem.num_chronons();

  std::vector<const Cei*> ceis = problem.AllCeis();
  // Earliest-completion order: the local-ratio selection rule picks the
  // positive-weight CEI whose last segment ends first.
  std::sort(ceis.begin(), ceis.end(), [](const Cei* a, const Cei* b) {
    const Chronon fa = a->LatestFinish();
    const Chronon fb = b->LatestFinish();
    if (fa != fb) return fa < fb;
    const Chronon ca = a->TotalChronons();
    const Chronon cb = b->TotalChronons();
    if (ca != cb) return ca < cb;
    return a->id < b->id;
  });

  // Unit profits: the recursive weight decomposition w -> w - w1(N[v])
  // degenerates to zeroing the residual weight of v's conflict
  // neighborhood. weight[i] > 0 <=> CEI i still selectable.
  std::vector<double> weight(ceis.size(), 1.0);
  // Per-chronon committed segment coverage (machine usage).
  std::vector<int64_t> coverage(static_cast<size_t>(k), 0);

  Schedule schedule(problem.num_resources(), k);
  int64_t committed = 0;

  for (size_t vi = 0; vi < ceis.size(); ++vi) {
    if (weight[vi] <= 0.0) continue;
    const Cei& v = *ceis[vi];

    // Feasibility in the machine model: every chronon any EI of v spans
    // must have a free budget unit per covering segment (two EIs of v
    // overlapping in time each need their own unit).
    std::vector<std::pair<Chronon, int64_t>> demand;  // chronon -> segments
    for (const auto& ei : v.eis) {
      for (Chronon t = ei.start; t <= ei.finish; ++t) {
        auto it = std::find_if(demand.begin(), demand.end(),
                               [t](const auto& d) { return d.first == t; });
        if (it == demand.end()) {
          demand.emplace_back(t, 1);
        } else {
          ++it->second;
        }
      }
    }
    bool feasible = true;
    for (const auto& [t, units] : demand) {
      if (coverage[static_cast<size_t>(t)] + units > problem.budget().At(t)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      weight[vi] = 0.0;
      continue;
    }

    // Select v: occupy its segments and zero the weight of every CEI that
    // conflicts with it under a now-exhausted chronon (for C = 1 this is
    // exactly the split-interval-graph closed neighborhood).
    for (const auto& ei : v.eis) {
      for (Chronon t = ei.start; t <= ei.finish; ++t) {
        ++coverage[static_cast<size_t>(t)];
      }
    }
    ++committed;
    // Probe each EI at its start chronon; the segment ownership guarantees
    // per-chronon feasibility (probes at t <= EIs covering t <= coverage).
    for (const auto& ei : v.eis) {
      Status st = schedule.AddProbe(ei.resource, ei.start);
      (void)st;  // AlreadyExists: the physical probe is shared.
    }

    // Neighborhood zeroing sweep — the expensive part of the local-ratio
    // scheme (O(V) pairwise segment-overlap tests per selection).
    for (size_t ui = 0; ui < ceis.size(); ++ui) {
      if (ui == vi || weight[ui] <= 0.0) continue;
      const Cei& u = *ceis[ui];
      if (!SegmentsOverlap(v, u)) continue;
      // u conflicts with v wherever budget is now exhausted.
      bool blocked = false;
      for (const auto& ei : u.eis) {
        for (Chronon t = ei.start; t <= ei.finish && !blocked; ++t) {
          if (coverage[static_cast<size_t>(t)] >= problem.budget().At(t)) {
            blocked = true;
          }
        }
        if (blocked) break;
      }
      if (blocked) weight[ui] = 0.0;
    }
  }

  OfflineApproxResult result{std::move(schedule), committed, 0.0, 0.0};
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

// ---------------------------------------------------------------------------
// Greedy slot-assignment solver (stronger non-paper baseline).
// ---------------------------------------------------------------------------

// Greedy slot assignment for one CEI against the committed bookings.
// On success commits the bookings and returns true; on failure leaves all
// state untouched and returns false.
class SlotAssigner {
 public:
  SlotAssigner(Schedule* schedule, std::vector<int64_t>* remaining,
               bool allow_shared_probes)
      : schedule_(schedule),
        remaining_(remaining),
        allow_shared_probes_(allow_shared_probes) {}

  bool TryCommit(const Cei& cei) {
    // Assign tight windows first: an EI with fewer feasible chronons is
    // harder to place.
    std::vector<const ExecutionInterval*> order;
    order.reserve(cei.eis.size());
    for (const auto& ei : cei.eis) order.push_back(&ei);
    std::sort(order.begin(), order.end(),
              [](const ExecutionInterval* a, const ExecutionInterval* b) {
                if (a->Length() != b->Length()) {
                  return a->Length() < b->Length();
                }
                return a->id < b->id;
              });

    std::vector<std::pair<ResourceId, Chronon>> booked;
    for (const ExecutionInterval* ei : order) {
      if (allow_shared_probes_) {
        bool satisfied =
            schedule_->ProbedInRange(ei->resource, ei->start, ei->finish);
        if (!satisfied) {
          for (const auto& [r, t] : booked) {
            if (r == ei->resource && ei->Contains(t)) {
              satisfied = true;
              break;
            }
          }
        }
        if (satisfied) continue;
      }

      Chronon chosen = kInvalidChronon;
      for (Chronon t = ei->start; t <= ei->finish; ++t) {
        int64_t tentative = 0;
        for (const auto& [r, t2] : booked) {
          if (t2 == t) ++tentative;
        }
        if ((*remaining_)[static_cast<size_t>(t)] - tentative > 0) {
          chosen = t;
          break;
        }
      }
      if (chosen == kInvalidChronon) return false;
      booked.emplace_back(ei->resource, chosen);
    }

    for (const auto& [r, t] : booked) {
      --(*remaining_)[static_cast<size_t>(t)];
      Status st = schedule_->AddProbe(r, t);
      (void)st;  // AlreadyExists: the probe is shared physically.
    }
    return true;
  }

 private:
  Schedule* schedule_;
  std::vector<int64_t>* remaining_;
  bool allow_shared_probes_;
};

}  // namespace

StatusOr<OfflineApproxResult> SolveOfflineApprox(
    const ProblemInstance& problem, const OfflineApproxOptions& options) {
  if (!options.transform_to_p1) {
    return SolveLocalRatio(problem);
  }
  Stopwatch watch;
  WEBMON_ASSIGN_OR_RETURN(
      P1TransformResult transformed,
      TransformToP1(problem, options.max_transform_ceis));
  OfflineApproxResult result = SolveLocalRatio(transformed.problem);
  // Evaluate the schedule against the ORIGINAL instance: identical
  // resources, epoch and budget make it directly feasible there.
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

StatusOr<OfflineApproxResult> SolveOfflineGreedy(
    const ProblemInstance& problem, const OfflineGreedyOptions& options) {
  Stopwatch watch;
  const Chronon k = problem.num_chronons();
  Schedule schedule(problem.num_resources(), k);
  std::vector<int64_t> remaining(static_cast<size_t>(k));
  for (Chronon t = 0; t < k; ++t) {
    remaining[static_cast<size_t>(t)] = problem.budget().At(t);
  }

  std::vector<const Cei*> order = problem.AllCeis();
  std::sort(order.begin(), order.end(), [](const Cei* a, const Cei* b) {
    const Chronon fa = a->LatestFinish();
    const Chronon fb = b->LatestFinish();
    if (fa != fb) return fa < fb;
    const Chronon ca = a->TotalChronons();
    const Chronon cb = b->TotalChronons();
    if (ca != cb) return ca < cb;
    return a->id < b->id;
  });

  SlotAssigner assigner(&schedule, &remaining, options.allow_shared_probes);
  int64_t committed = 0;
  for (const Cei* cei : order) {
    if (assigner.TryCommit(*cei)) ++committed;
  }

  OfflineApproxResult result{std::move(schedule), committed, 0.0, 0.0};
  result.completeness = GainedCompleteness(problem, result.schedule);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace webmon
