// AuctionWatch(k) (paper Section V-A.2): "monitor the prices of k auctions
// and notify the user after a new bid is posted in all k auctions".
//
// The example generates an eBay-like bid trace (the paper's real-trace
// substitute), builds AuctionWatch(k) workloads for k = 1..4, runs every
// policy, and prints a completeness report — a miniature of the paper's
// evaluation pipeline driven entirely through the public API.
//
// Build & run:  ./build/examples/auction_watch

#include <iostream>

#include "online/run.h"
#include "policy/policy_factory.h"
#include "trace/auction_trace.h"
#include "trace/update_model.h"
#include "util/table_writer.h"
#include "workload/generator.h"

namespace {

using namespace webmon;

int Run() {
  std::cout << "AuctionWatch(k): cross k auction bid streams, window of 15 "
               "chronons, C = 1\n\n";
  Rng rng(7);
  AuctionTraceOptions trace_options;
  trace_options.num_auctions = 150;
  trace_options.target_total_bids = 2300;
  trace_options.num_chronons = 864;
  auto trace = GenerateAuctionTrace(trace_options, rng);
  if (!trace.ok()) {
    std::cerr << trace.status() << "\n";
    return 1;
  }
  std::cout << "auction trace: " << trace->num_resources() << " auctions, "
            << trace->TotalEvents() << " bids over "
            << trace->num_chronons() << " chronons\n\n";
  PerfectUpdateModel model(*trace);

  TableWriter table({"k", "CEIs", "EIs", "policy", "completeness",
                     "probes"});
  for (uint32_t k = 1; k <= 4; ++k) {
    ProfileTemplate tmpl =
        ProfileTemplate::AuctionWatch(k, /*exact_rank=*/true, /*window=*/15);
    WorkloadOptions options;
    options.num_profiles = 40;
    options.alpha = 0.3;
    options.budget = 1;
    Rng workload_rng(100 + k);
    auto workload =
        GenerateWorkload(tmpl, options, model, *trace, workload_rng);
    if (!workload.ok()) {
      std::cerr << workload.status() << "\n";
      return 1;
    }
    for (const char* name : {"mrsf", "m-edf", "s-edf", "wic"}) {
      auto policy = MakePolicy(name);
      if (!policy.ok()) return 1;
      auto run = RunOnline(workload->problem, policy->get());
      if (!run.ok()) {
        std::cerr << run.status() << "\n";
        return 1;
      }
      table.AddRow({TableWriter::Fmt(static_cast<int64_t>(k)),
                    TableWriter::Fmt(workload->problem.TotalCeis()),
                    TableWriter::Fmt(workload->problem.TotalEis()),
                    (*policy)->name(),
                    TableWriter::Percent(run->completeness),
                    TableWriter::Fmt(run->stats.probes_issued)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: completeness falls as k grows, since all "
               "k bid streams must be captured for a notification.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
