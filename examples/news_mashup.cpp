// News mashup (paper Section II, Example 2).
//
// A business analyst probes Mish's Global Economic Trend Analysis blog
// every 10 minutes (slack 2 minutes). Whenever a new post contains "oil",
// she needs CNN Breaking News and CNN Money crossed within 10 minutes.
// This is the paper's canonical *conditional* complex need: the rank of the
// CEI (1 vs 3) is only known after the first probe's content is seen.
//
// The example simulates blog posts with content, drives the streaming Proxy
// API chronon by chronon, and submits the conditional crossing needs as
// keyword matches are discovered — exactly the on-the-fly arrival pattern
// Algorithm 1 is designed for.
//
// Build & run:  ./build/examples/news_mashup

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "online/proxy.h"
#include "policy/policy_factory.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

using namespace webmon;

constexpr ResourceId kMishBlog = 0;
constexpr ResourceId kCnnBreakingNews = 1;
constexpr ResourceId kCnnMoney = 2;
constexpr uint32_t kNumFeeds = 3;

// One chronon = 1 minute; monitor for 6 hours.
constexpr Chronon kHorizon = 360;
constexpr Chronon kBlogPeriod = 10;  // "WHEN EVERY 10 MINUTES"
constexpr Chronon kBlogSlack = 2;    // "WITHIN T1+2 MINUTES"
constexpr Chronon kCrossWindow = 10; // "WITHIN T1+10 MINUTES"

// Simulated blog: a post per ~25 minutes; ~40% mention oil.
std::map<Chronon, std::string> SimulateBlogPosts(Rng& rng) {
  static const char* kOilHeadlines[] = {
      "Crude OIL inventories surprise markets",
      "Oil futures spike on supply fears",
      "Energy: oil majors report earnings",
  };
  static const char* kOtherHeadlines[] = {
      "Housing starts cool in the midwest",
      "Treasury yields drift lower",
      "Retail sales beat expectations",
  };
  std::map<Chronon, std::string> posts;
  Chronon t = 0;
  while (true) {
    t += 10 + static_cast<Chronon>(rng.UniformU64(30));
    if (t >= kHorizon) break;
    if (rng.Bernoulli(0.4)) {
      posts[t] = kOilHeadlines[rng.UniformU64(3)];
    } else {
      posts[t] = kOtherHeadlines[rng.UniformU64(3)];
    }
  }
  return posts;
}

int Run() {
  std::cout << "News mashup: blog polled every " << kBlogPeriod
            << " min, conditional crossing of CNN feeds on %oil%\n\n";
  Rng rng(42);
  const auto posts = SimulateBlogPosts(rng);

  auto policy = MakePolicy("m-edf");
  if (!policy.ok()) return 1;
  Proxy proxy(kNumFeeds, kHorizon, BudgetVector::Uniform(1),
              std::move(*policy));

  int oil_posts = 0;
  int crossings_submitted = 0;
  int captured = 0;
  proxy.set_on_cei_captured([&](CeiId) { ++captured; });

  // The latest blog content the proxy has seen, updated on probe.
  std::string last_seen_content;
  Chronon last_seen_post = kInvalidChronon;

  // q1: periodic probing of the blog — submit the T1 EIs up front.
  for (Chronon t = 0; t + kBlogSlack < kHorizon; t += kBlogPeriod) {
    auto st = proxy.Submit({{kMishBlog, t, t + kBlogSlack}});
    if (!st.ok()) {
      std::cerr << st.status() << "\n";
      return 1;
    }
  }

  while (!proxy.Done()) {
    const Chronon now = proxy.now();
    auto probed = proxy.Tick();
    if (!probed.ok()) {
      std::cerr << probed.status() << "\n";
      return 1;
    }
    for (ResourceId r : *probed) {
      if (r != kMishBlog) continue;
      // The probe returns the latest post at or before `now`.
      auto it = posts.upper_bound(now);
      if (it == posts.begin()) continue;
      --it;
      if (it->first == last_seen_post) continue;  // nothing new
      last_seen_post = it->first;
      last_seen_content = it->second;
      // q2/q3: WHEN F1 CONTAINS %oil% cross the two CNN streams WITHIN
      // T1 + 10 MINUTES.
      if (ContainsIgnoreCase(last_seen_content, "oil")) {
        ++oil_posts;
        const Chronon deadline =
            std::min<Chronon>(now + kCrossWindow, kHorizon - 1);
        auto need = proxy.Submit({{kCnnBreakingNews, now, deadline},
                                  {kCnnMoney, now, deadline}});
        if (need.ok()) {
          ++crossings_submitted;
          std::cout << "chronon " << now << ": blog says \""
                    << last_seen_content << "\" -> crossing CNN streams by "
                    << deadline << " (need " << *need << ")\n";
        }
      }
    }
  }

  std::cout << "\noil posts seen: " << oil_posts
            << ", crossings submitted: " << crossings_submitted
            << "\nneeds captured: " << proxy.stats().ceis_captured << "/"
            << proxy.stats().ceis_seen << " ("
            << proxy.CompletenessSoFar() * 100 << "%), probes: "
            << proxy.stats().probes_issued << "\n";
  return (crossings_submitted > 0 && captured > 0) ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
