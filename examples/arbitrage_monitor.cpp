// Arbitrage monitoring (paper Section I, Figure 1, and Example 3).
//
// A trading desk hunts arbitrage across a basket of instruments: each
// instrument trades on a stock exchange, a futures exchange, and a currency
// exchange, and a price discrepancy is only actionable if the proxy
// observes all three quotes with overlapping time reference. Every price
// update on an instrument's primary listing therefore spawns a rank-3 CEI:
// capture the update on each of the instrument's three listings within a
// 1-second window (1 chronon = 250 ms, so a 4-chronon window).
//
// Each (instrument, exchange) pair is a separate pollable resource, so with
// a basket of 12 instruments the proxy juggles 36 resources under a budget
// of a few probes per chronon — enough contention that the scheduling
// policy matters.
//
// Build & run:  ./build/examples/arbitrage_monitor

#include <iostream>

#include "model/completeness.h"
#include "online/run.h"
#include "policy/policy_factory.h"
#include "trace/trace.h"
#include "util/poisson.h"
#include "util/rng.h"
#include "util/table_writer.h"

namespace {

using namespace webmon;

constexpr uint32_t kNumInstruments = 12;
constexpr uint32_t kNumExchanges = 3;  // stock, futures, currency
constexpr uint32_t kNumResources = kNumInstruments * kNumExchanges;
constexpr Chronon kHorizon = 2000;  // ~8 minutes at 250 ms chronons
constexpr Chronon kWindow = 4;      // "WITHIN T1+1 SECONDS"

ResourceId ListingOf(uint32_t instrument, uint32_t exchange) {
  return instrument * kNumExchanges + exchange;
}

// Simulates correlated update streams per instrument: the stock listing
// updates as a Poisson process; the derivative listings react within a
// couple of chronons.
StatusOr<EventTrace> SimulateMarkets(Rng& rng) {
  EventTrace trace(kNumResources, kHorizon);
  for (uint32_t instrument = 0; instrument < kNumInstruments; ++instrument) {
    WEBMON_ASSIGN_OR_RETURN(
        std::vector<double> arrivals,
        HomogeneousPoissonArrivals(0.05, static_cast<double>(kHorizon), rng));
    for (Chronon t :
         BucketArrivals(arrivals, static_cast<double>(kHorizon), kHorizon)) {
      WEBMON_RETURN_IF_ERROR(trace.AddEvent(ListingOf(instrument, 0), t));
      for (uint32_t exchange = 1; exchange < kNumExchanges; ++exchange) {
        const Chronon reaction = std::min<Chronon>(
            t + static_cast<Chronon>(rng.UniformU64(3)), kHorizon - 1);
        WEBMON_RETURN_IF_ERROR(
            trace.AddEvent(ListingOf(instrument, exchange), reaction));
      }
    }
  }
  trace.Finalize();
  return trace;
}

// Builds one rank-3 CEI per primary-listing update: all three listings of
// the instrument must be probed within the arbitrage window.
StatusOr<ProblemInstance> BuildArbitrageNeeds(const EventTrace& trace,
                                              int64_t budget) {
  ProblemBuilder builder(kNumResources, kHorizon,
                         BudgetVector::Uniform(budget));
  for (uint32_t instrument = 0; instrument < kNumInstruments; ++instrument) {
    builder.BeginProfile();  // one client profile per instrument watch
    for (Chronon t : trace.EventsOf(ListingOf(instrument, 0))) {
      const Chronon finish = std::min<Chronon>(t + kWindow, kHorizon - 1);
      WEBMON_RETURN_IF_ERROR(builder
                                 .AddCei({{ListingOf(instrument, 0), t, finish},
                                          {ListingOf(instrument, 1), t, finish},
                                          {ListingOf(instrument, 2), t, finish}})
                                 .status());
    }
  }
  return builder.Build();
}

int Run() {
  std::cout << "Arbitrage monitor: " << kNumInstruments
            << " instruments x 3 exchanges (" << kNumResources
            << " resources), window " << kWindow << " chronons (1 s)\n\n";
  Rng rng(2009);
  auto trace = SimulateMarkets(rng);
  if (!trace.ok()) {
    std::cerr << trace.status() << "\n";
    return 1;
  }
  int64_t windows = 0;
  for (uint32_t i = 0; i < kNumInstruments; ++i) {
    windows += static_cast<int64_t>(trace->EventsOf(ListingOf(i, 0)).size());
  }
  std::cout << "simulated " << trace->TotalEvents()
            << " quote updates; arbitrage windows to capture: " << windows
            << "\n\n";

  TableWriter table(
      {"budget C", "policy", "windows captured", "completeness"});
  for (int64_t budget : {1, 2, 4}) {
    auto problem = BuildArbitrageNeeds(*trace, budget);
    if (!problem.ok()) {
      std::cerr << problem.status() << "\n";
      return 1;
    }
    for (const char* name : {"mrsf", "m-edf", "s-edf", "random"}) {
      auto policy = MakePolicy(name);
      if (!policy.ok()) return 1;
      auto run = RunOnline(*problem, policy->get());
      if (!run.ok()) {
        std::cerr << run.status() << "\n";
        return 1;
      }
      table.AddRow({TableWriter::Fmt(budget), (*policy)->name(),
                    TableWriter::Fmt(run->stats.ceis_captured),
                    TableWriter::Percent(run->completeness)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nNote: a captured window means all three listings were "
               "probed inside the 1-second overlap — the precondition for "
               "acting on a price discrepancy.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
