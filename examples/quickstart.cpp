// Quickstart: the webmon public API in ~60 lines.
//
// A proxy monitors three Web resources over an epoch of 20 chronons with a
// budget of one probe per chronon. Two clients submit complex needs (CEIs):
// one crosses two streams, the other watches a single stream. The MRSF
// policy decides what to probe each chronon.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "online/proxy.h"
#include "policy/policy_factory.h"

int main() {
  using namespace webmon;

  constexpr uint32_t kResources = 3;   // r0, r1, r2
  constexpr Chronon kHorizon = 20;     // epoch length
  auto policy = MakePolicy("mrsf");
  if (!policy.ok()) {
    std::cerr << policy.status() << "\n";
    return 1;
  }

  Proxy proxy(kResources, kHorizon, BudgetVector::Uniform(1),
              std::move(*policy));
  proxy.set_on_cei_captured(
      [](CeiId id) { std::cout << "  [captured] complex need " << id << "\n"; });
  proxy.set_on_cei_expired(
      [](CeiId id) { std::cout << "  [expired]  complex need " << id << "\n"; });

  // Client 1: cross streams r0 and r1 — r0 must be probed in chronons
  // [2, 6] and r1 in [4, 9] for the need to be satisfied (AND semantics).
  auto need1 = proxy.Submit({{0, 2, 6}, {1, 4, 9}});
  // Client 2: watch r2 during [3, 5].
  auto need2 = proxy.Submit({{2, 3, 5}});
  if (!need1.ok() || !need2.ok()) {
    std::cerr << "submit failed\n";
    return 1;
  }
  std::cout << "submitted needs " << *need1 << " and " << *need2 << "\n";

  while (!proxy.Done()) {
    const Chronon now = proxy.now();
    auto probed = proxy.Tick();
    if (!probed.ok()) {
      std::cerr << probed.status() << "\n";
      return 1;
    }
    for (ResourceId r : *probed) {
      std::cout << "chronon " << now << ": probed r" << r << "\n";
    }
  }

  std::cout << "completeness: " << proxy.CompletenessSoFar() * 100 << "% ("
            << proxy.stats().ceis_captured << "/" << proxy.stats().ceis_seen
            << " needs, " << proxy.stats().probes_issued << " probes)\n";
  return proxy.stats().ceis_captured == 2 ? 0 : 1;
}
