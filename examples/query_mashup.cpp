// The paper's Example 2 — as an actual continuous-query program.
//
// This example runs the full pipeline the paper sketches in Section II:
// the query text below is parsed by the library's CQ front-end, compiled
// onto the monitoring proxy, and executed against a simulated feed world
// (a blog that occasionally mentions oil, plus the two CNN feeds). Compare
// with examples/news_mashup.cpp, which drives the same scenario by hand
// through the Proxy API.
//
// Build & run:  ./build/examples/query_mashup

#include <iostream>
#include <map>

#include "policy/policy_factory.h"
#include "query/engine.h"
#include "query/parser.h"
#include "trace/poisson_trace.h"
#include "util/table_writer.h"

namespace {

using namespace webmon;

// One chronon = 1 minute; monitor for 6 hours.
constexpr Chronon kHorizon = 360;

constexpr const char* kProgram = R"(
  SELECT item AS F1 FROM feed(MishBlog)
    WHEN EVERY 10 MINUTES AS T1 WITHIN T1+2 MINUTES;
  SELECT item AS F2 FROM feed(CNNBreakingNews)
    WHEN F1 CONTAINS %oil% WITHIN T1+10 MINUTES;
  SELECT item AS F3 FROM feed(CNNMoney)
    WHEN F1 CONTAINS %oil% WITHIN T1+10 MINUTES
)";

int Run() {
  std::cout << "Continuous-query program (paper Example 2):\n"
            << kProgram << "\n";

  auto queries = ParseQueries(kProgram);
  if (!queries.ok()) {
    std::cerr << "parse error: " << queries.status() << "\n";
    return 1;
  }
  std::cout << "parsed " << queries->size() << " queries:\n";
  for (const auto& q : *queries) {
    std::cout << "  " << q.ToString() << "\n";
  }

  // Simulated world: the blog posts ~every 25 minutes; the CNN feeds churn
  // constantly (their updates are what the crossings capture).
  Rng rng(2026);
  PoissonTraceOptions trace_options;
  trace_options.num_resources = 3;
  trace_options.num_chronons = kHorizon;
  trace_options.lambda = 14.0;
  auto trace = GeneratePoissonTrace(trace_options, rng);
  if (!trace.ok()) {
    std::cerr << trace.status() << "\n";
    return 1;
  }
  FeedWorldOptions world_options;
  world_options.keywords = {"oil"};
  world_options.keyword_prob = 0.4;
  world_options.seed = 7;
  auto world = FeedWorld::Create(*trace, world_options);
  if (!world.ok()) {
    std::cerr << world.status() << "\n";
    return 1;
  }

  const std::map<std::string, ResourceId> feeds = {
      {"MishBlog", 0}, {"CNNBreakingNews", 1}, {"CNNMoney", 2}};
  auto policy = MakePolicy("m-edf");
  if (!policy.ok()) return 1;
  auto engine = QueryEngine::Create(*queries, feeds, &*world,
                                    std::move(*policy), kHorizon,
                                    BudgetVector::Uniform(1));
  if (!engine.ok()) {
    std::cerr << engine.status() << "\n";
    return 1;
  }
  if (Status st = (*engine)->Run(); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  std::cout << "\nafter " << kHorizon << " chronons:\n\n";
  TableWriter table({"query", "feed", "triggers", "items seen", "needs",
                     "captured"});
  for (const auto& q : *queries) {
    auto stats = (*engine)->StatsFor(q.alias);
    if (!stats.ok()) continue;
    table.AddRow({q.alias, q.feed, TableWriter::Fmt(stats->triggers_fired),
                  TableWriter::Fmt(stats->items_delivered),
                  TableWriter::Fmt(stats->needs_submitted),
                  TableWriter::Fmt(stats->needs_captured)});
  }
  table.Print(std::cout);
  std::cout << "\ntotal probes: " << (*engine)->proxy().stats().probes_issued
            << " (budget was " << kHorizon << ")\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
